package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/gpu"
	"repro/internal/stats"

	"bytes"
	"fmt"
	"repro/internal/obs"
)

func testConfig() gpu.Config {
	cfg := gpu.ScaledConfig()
	cfg.SMsPerChip = 4
	cfg.WarpsPerSM = 4
	return cfg
}

func testRun(bench string, cycles int64) *stats.Run {
	return &stats.Run{
		Benchmark: bench,
		Org:       "memory-side",
		Cycles:    cycles,
		MemOps:    cycles / 2,
		LLCHits:   100,
		LLCMisses: 17,
		Kernels:   []stats.KernelRec{{Index: 0, Name: "k0", Org: "memory-side", Cycles: cycles, MemOps: cycles / 2}},
	}
}

func TestKeyDeterministicAndSensitive(t *testing.T) {
	cfg := testConfig()
	k1 := Key(cfg, "BP", "")
	k2 := Key(cfg, "BP", "")
	if k1 != k2 {
		t.Fatalf("same identity hashed differently: %s vs %s", k1, k2)
	}
	if len(k1) != 64 {
		t.Fatalf("key is not a hex sha256: %q", k1)
	}
	// Every component of the identity must change the key.
	if Key(cfg, "RN", "") == k1 {
		t.Error("benchmark does not affect key")
	}
	if Key(cfg, "BP", "dram:0.0@100*0.5") == k1 {
		t.Error("fault plan does not affect key")
	}
	cfg2 := cfg
	cfg2.RingLinkBW *= 2
	if Key(cfg2, "BP", "") == k1 {
		t.Error("config does not affect key")
	}
	org := cfg.WithOrg(gpu.ScaledConfig().Org + 1)
	if Key(org, "BP", "") == k1 {
		t.Error("organization does not affect key")
	}
}

// TestFidelityKeysDistinct pins the fidelity ladder's store contract: the
// same cell cached at two fidelities is two distinct objects (a warm
// estimate must never answer an exact request), while "" and "exact"
// address the same legacy keys so pre-ladder caches stay warm.
func TestFidelityKeysDistinct(t *testing.T) {
	cfg := testConfig()
	exact := KeyAt(cfg, "BP", "", "exact")
	if exact != Key(cfg, "BP", "") {
		t.Fatal(`"exact" does not address the legacy exact key; pre-ladder caches would go cold`)
	}
	est := KeyAt(cfg, "BP", "", "estimate")
	smp := KeyAt(cfg, "BP", "", "sampled")
	if est == exact || smp == exact || est == smp {
		t.Fatalf("fidelity rungs collide: exact=%.12s estimate=%.12s sampled=%.12s", exact, est, smp)
	}

	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutRunAt(cfg, "BP", "", "estimate", testRun("BP", 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutRunAt(cfg, "BP", "", "sampled", testRun("BP", 200)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("same cell at two fidelities stored %d objects, want 2", s.Len())
	}
	if _, ok := s.Get(exact); ok {
		t.Fatal("fast-fidelity result answered an exact lookup")
	}
	got, ok := s.Get(est)
	if !ok {
		t.Fatal("estimate put is a miss")
	}
	if got.Cycles != 100 {
		t.Fatalf("estimate lookup returned cycles=%d, want the estimate object (100)", got.Cycles)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	want := testRun("BP", 12345)
	if err := s.PutRun(cfg, "BP", "", want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(Key(cfg, "BP", ""))
	if !ok {
		t.Fatal("fresh put is a miss")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip changed the result:\n got %+v\nwant %+v", got, want)
	}
	if s.Hits() != 1 || s.Misses() != 0 {
		t.Fatalf("hits=%d misses=%d, want 1/0", s.Hits(), s.Misses())
	}
	if _, ok := s.Get(Key(cfg, "RN", "")); ok {
		t.Fatal("unstored key is a hit")
	}
	if s.Misses() != 1 {
		t.Fatalf("misses=%d, want 1", s.Misses())
	}
}

func TestReopenSeesEntries(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutRun(cfg, "BP", "", testRun("BP", 99)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("reopened store has %d entries, want 1", s2.Len())
	}
	if _, ok := s2.Get(Key(cfg, "BP", "")); !ok {
		t.Fatal("reopened store misses a persisted entry")
	}
}

func TestCorruptObjectQuarantinedAndHeals(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	var reported []string
	s, err := Open(dir, Options{OnCorrupt: func(key string) { reported = append(reported, key) }})
	if err != nil {
		t.Fatal(err)
	}
	key := Key(cfg, "BP", "")
	if err := s.PutRun(cfg, "BP", "", testRun("BP", 7)); err != nil {
		t.Fatal(err)
	}
	// Truncate the object to simulate disk corruption.
	path := s.objectPath(key)
	if err := os.WriteFile(path, []byte(`{"version":1,"key":{`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("corrupt object served as a hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt object still addressable")
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("corrupt object not quarantined for forensics: %v", err)
	}
	if s.Corrupt() != 1 || len(reported) != 1 || reported[0] != key {
		t.Fatalf("corruption accounting: Corrupt=%d reported=%v", s.Corrupt(), reported)
	}
	if s.Len() != 0 {
		t.Fatalf("index still holds %d entries after healing", s.Len())
	}
	// The slot is writable again, and the quarantined sibling is invisible
	// to a reopened store's index rebuild.
	if err := s.PutRun(cfg, "BP", "", testRun("BP", 7)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); !ok {
		t.Fatal("healed slot still misses")
	}
	s.Close()
	os.Remove(filepath.Join(dir, "index.json"))
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("rebuilt index counts %d entries, want 1 (quarantine file leaked in)", s2.Len())
	}
}

func TestContentHashMismatchQuarantined(t *testing.T) {
	// A result payload silently altered on disk still parses as valid JSON
	// under the right key — only the content hash catches it.
	dir := t.TempDir()
	cfg := testConfig()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := Key(cfg, "BP", "")
	if err := s.PutRun(cfg, "BP", "", testRun("BP", 7)); err != nil {
		t.Fatal(err)
	}
	path := s.objectPath(key)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(b), `"Cycles":7`, `"Cycles":8`, 1)
	if tampered == string(b) {
		t.Fatal("test setup: cycles field not found in object JSON")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("tampered result served as a hit")
	}
	if s.Corrupt() != 1 {
		t.Fatalf("Corrupt=%d after tampered Get, want 1", s.Corrupt())
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("tampered object not quarantined: %v", err)
	}
}

func TestMismatchedObjectRejected(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutRun(cfg, "BP", "", testRun("BP", 7)); err != nil {
		t.Fatal(err)
	}
	// Copy the BP object onto the RN address: content no longer matches it.
	rnKey := Key(cfg, "RN", "")
	b, err := os.ReadFile(s.objectPath(Key(cfg, "BP", "")))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(s.objectPath(rnKey)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.objectPath(rnKey), b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(rnKey); ok {
		t.Fatal("object served under an address it does not hash to")
	}
}

func TestCorruptIndexRebuilds(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutRun(cfg, "BP", "", testRun("BP", 7)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "index.json"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("rebuilt index has %d entries, want 1", s2.Len())
	}
	if _, ok := s2.Get(Key(cfg, "BP", "")); !ok {
		t.Fatal("object unreachable after index rebuild")
	}
}

func TestLRUEviction(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	// Size one object to derive a cap that holds exactly two.
	probe, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := probe.PutRun(cfg, "BP", "", testRun("BP", 1)); err != nil {
		t.Fatal(err)
	}
	objSize := probe.SizeBytes()
	probe.quarantine(Key(cfg, "BP", ""))

	s, err := Open(dir, Options{MaxBytes: objSize*2 + objSize/2})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []string{"BP", "RN", "SN"} {
		if err := s.PutRun(cfg, b, "", testRun(b, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 2 {
		t.Fatalf("store holds %d objects over the cap, want 2", s.Len())
	}
	// BP was least recently used and must be the evicted one.
	if _, ok := s.Get(Key(cfg, "BP", "")); ok {
		t.Fatal("LRU entry survived eviction")
	}
	for _, b := range []string{"RN", "SN"} {
		if _, ok := s.Get(Key(cfg, b, "")); !ok {
			t.Fatalf("recently used %s evicted", b)
		}
	}
}

func TestGetBumpsRecency(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	probe, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := probe.PutRun(cfg, "BP", "", testRun("BP", 1)); err != nil {
		t.Fatal(err)
	}
	objSize := probe.SizeBytes()
	probe.quarantine(Key(cfg, "BP", ""))

	s, err := Open(dir, Options{MaxBytes: objSize*2 + objSize/2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutRun(cfg, "BP", "", testRun("BP", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutRun(cfg, "RN", "", testRun("RN", 1)); err != nil {
		t.Fatal(err)
	}
	// Touch BP so RN becomes the LRU victim.
	if _, ok := s.Get(Key(cfg, "BP", "")); !ok {
		t.Fatal("warm entry missed")
	}
	if err := s.PutRun(cfg, "SN", "", testRun("SN", 1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(Key(cfg, "BP", "")); !ok {
		t.Fatal("recently read entry evicted instead of LRU")
	}
	if _, ok := s.Get(Key(cfg, "RN", "")); ok {
		t.Fatal("LRU entry survived")
	}
}

func TestNoTempFilesLeftBehind(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []string{"BP", "RN"} {
		if err := s.PutRun(cfg, b, "", testRun(b, 1)); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

func TestJSONIdentityAfterRoundTrip(t *testing.T) {
	// The daemon's byte-identity guarantee rests on JSON round trips being
	// exact for stats.Run; pin it here at the store layer.
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	want := testRun("BP", 123456789)
	if err := s.PutRun(cfg, "BP", "", want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(Key(cfg, "BP", ""))
	if !ok {
		t.Fatal("miss")
	}
	wb, _ := json.Marshal(want)
	gb, _ := json.Marshal(got)
	if string(wb) != string(gb) {
		t.Fatalf("JSON differs after round trip:\n%s\n%s", wb, gb)
	}
}

// TestObsCountersExported pins the Registry satellite: with a registry
// wired at Open, hits, misses, and evictions move the exported counters in
// lockstep with the Go accessors.
func TestObsCountersExported(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	// Derive the single-object size so the capped store below holds two.
	probe, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := probe.PutRun(cfg, "BP", "", testRun("BP", 1)); err != nil {
		t.Fatal(err)
	}
	objSize := probe.SizeBytes()
	probe.quarantine(Key(cfg, "BP", ""))

	reg := obs.NewRegistry()
	s, err := Open(dir, Options{MaxBytes: objSize*2 + objSize/2, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(Key(cfg, "BP", "")); ok {
		t.Fatal("quarantined entry came back")
	}
	for _, b := range []string{"BP", "RN", "SN"} {
		if err := s.PutRun(cfg, b, "", testRun(b, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Get(Key(cfg, "SN", "")); !ok {
		t.Fatal("fresh entry missed")
	}

	want := map[string]int64{
		"sacd_store_hits_total":      s.Hits(),
		"sacd_store_misses_total":    s.Misses(),
		"sacd_store_evictions_total": s.Evictions(),
	}
	if want["sacd_store_hits_total"] == 0 || want["sacd_store_misses_total"] == 0 ||
		want["sacd_store_evictions_total"] == 0 {
		t.Fatalf("test exercised nothing: %v", want)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for name, v := range want {
		if !strings.Contains(buf.String(), fmt.Sprintf("%s %d", name, v)) {
			t.Errorf("metrics missing %s %d:\n%s", name, v, buf.String())
		}
	}
}

// TestGetRawZeroCopyBytes pins the zero-copy invariant GetRaw serves under:
// the raw bytes a hit returns are exactly json.Marshal of the stored result
// (what Put embedded), so servers can relay them without a decode/re-encode
// round trip — and the legacy cycles sidecar decodes without touching them.
func TestGetRawZeroCopyBytes(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	want := testRun("BP", 12345)
	if err := s.PutRun(cfg, "BP", "", want); err != nil {
		t.Fatal(err)
	}
	key := Key(cfg, "BP", "")
	raw, cycles, ok := s.GetRaw(key)
	if !ok {
		t.Fatal("fresh put is a GetRaw miss")
	}
	canonical, _ := json.Marshal(want)
	if !bytes.Equal(raw, canonical) {
		t.Fatalf("raw bytes are not canonical json.Marshal of the result:\n got %s\nwant %s", raw, canonical)
	}
	if cycles != want.Cycles {
		t.Fatalf("cycles sidecar %d, want %d", cycles, want.Cycles)
	}
	if s.Hits() != 1 {
		t.Fatalf("hits=%d after GetRaw, want 1", s.Hits())
	}
	if _, _, ok := s.GetRaw(Key(cfg, "RN", "")); ok {
		t.Fatal("unstored key is a GetRaw hit")
	}
}

// TestGetRawVerifiesContentHash checks GetRaw performs the same content-hash
// verification Get does: tampered payload bytes are quarantined, not served.
func TestGetRawVerifiesContentHash(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := Key(cfg, "BP", "")
	if err := s.PutRun(cfg, "BP", "", testRun("BP", 7)); err != nil {
		t.Fatal(err)
	}
	path := s.objectPath(key)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(b), `"Cycles":7`, `"Cycles":8`, 1)
	if tampered == string(b) {
		t.Fatal("test setup: cycles field not found in object JSON")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.GetRaw(key); ok {
		t.Fatal("tampered object served raw")
	}
	if s.Corrupt() != 1 {
		t.Fatalf("Corrupt=%d after tampered GetRaw, want 1", s.Corrupt())
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("tampered object not quarantined: %v", err)
	}
}

// TestGetRawNilStore checks the nil receiver reads as a miss, matching the
// rest of the Store surface servers call without a nil guard.
func TestGetRawNilStore(t *testing.T) {
	var s *Store
	if _, _, ok := s.GetRaw("deadbeef"); ok {
		t.Fatal("nil store returned a hit")
	}
}

// TestHotTierServesRepeatReads checks the in-memory tier: the first raw read
// verifies from disk and goes resident, and repeat reads are served from
// memory (observable: they survive the file vanishing underneath).
func TestHotTierServesRepeatReads(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	want := testRun("BP", 99)
	if err := s.PutRun(cfg, "BP", "", want); err != nil {
		t.Fatal(err)
	}
	key := Key(cfg, "BP", "")
	if s.HotLen() != 0 {
		t.Fatalf("hot tier holds %d entries before any read, want 0 (reads verify from disk first)", s.HotLen())
	}
	first, _, ok := s.GetRaw(key)
	if !ok {
		t.Fatal("disk read missed")
	}
	if s.HotLen() != 1 {
		t.Fatalf("hot tier holds %d entries after a verified read, want 1", s.HotLen())
	}
	if err := os.Remove(s.objectPath(key)); err != nil {
		t.Fatal(err)
	}
	second, cycles, ok := s.GetRaw(key)
	if !ok {
		t.Fatal("hot read missed after file removal")
	}
	if !bytes.Equal(first, second) || cycles != want.Cycles {
		t.Fatal("hot read returned different bytes than the disk read")
	}
}

// TestHotTierBytesBounded checks the LRU byte budget: entries beyond
// HotBytes push the oldest out, and a negative budget disables the tier.
func TestHotTierBytesBounded(t *testing.T) {
	cfg := testConfig()
	one, _ := json.Marshal(testRun("BP", 1))
	// Budget fits roughly two results (entries above budget/4 are skipped,
	// so the budget must be comfortably larger than one object).
	s, err := Open(t.TempDir(), Options{HotBytes: int64(len(one))*2 + 64})
	if err != nil {
		t.Fatal(err)
	}
	benches := []string{"BP", "RN", "SN"}
	for _, b := range benches {
		if err := s.PutRun(cfg, b, "", testRun(b, 5)); err != nil {
			t.Fatal(err)
		}
		if _, _, ok := s.GetRaw(Key(cfg, b, "")); !ok {
			t.Fatalf("read of %s missed", b)
		}
	}
	if got := s.HotLen(); got >= len(benches) {
		t.Fatalf("hot tier holds %d entries, want < %d (budget must evict)", got, len(benches))
	}

	off, err := Open(t.TempDir(), Options{HotBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := off.PutRun(cfg, "BP", "", testRun("BP", 5)); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := off.GetRaw(Key(cfg, "BP", "")); !ok {
		t.Fatal("read missed with the hot tier disabled")
	}
	if off.HotLen() != 0 {
		t.Fatalf("disabled hot tier holds %d entries", off.HotLen())
	}
}

// TestHotTierDroppedOnQuarantine checks that quarantining a key also forgets
// its resident bytes, so a healed slot never serves the pre-corruption data.
func TestHotTierDroppedOnQuarantine(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	if err := s.PutRun(cfg, "BP", "", testRun("BP", 7)); err != nil {
		t.Fatal(err)
	}
	key := Key(cfg, "BP", "")
	if _, _, ok := s.GetRaw(key); !ok {
		t.Fatal("read missed")
	}
	s.quarantine(key)
	if s.HotLen() != 0 {
		t.Fatalf("hot tier still holds %d entries after quarantine", s.HotLen())
	}
	if _, _, ok := s.GetRaw(key); ok {
		t.Fatal("quarantined key still served")
	}
}
