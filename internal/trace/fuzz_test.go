package trace

import (
	"bytes"
	"encoding/binary"
	"runtime"
	"testing"
)

// allocBytes reads cumulative heap allocation, for the bounded-allocation test.
func allocBytes() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.TotalAlloc
}

// validTraceBytes builds a small well-formed trace for corpora and mutation.
func validTraceBytes(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Capture(&buf, spec(), m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzTraceRead is the parser robustness gate: Read must return a trace or an
// error on arbitrary input — never panic, and never allocate unboundedly from
// a corrupt length field.
func FuzzTraceRead(f *testing.F) {
	full := validTraceBytes(f)
	f.Add(full)
	f.Add(full[:len(full)/2])
	f.Add(full[:12])
	f.Add([]byte{})
	f.Add([]byte("garbage that is not a trace"))
	// A lying header: valid magic/version, absurd shape.
	lying := append([]byte(nil), full[:8]...)
	lying = binary.LittleEndian.AppendUint32(lying, 1<<30)
	f.Add(lying)
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err == nil && tr == nil {
			t.Fatal("nil trace with nil error")
		}
		if tr != nil && err == nil {
			// Accepted traces must be internally consistent.
			if tr.Machine().Validate() != nil && tr.TotalAccesses() < 0 {
				t.Fatalf("accepted inconsistent trace %+v", tr.Header)
			}
		}
	})
}

// TestReadRejectsHostileHeaders covers the specific corruption classes the
// header validator exists for: each would previously drive a huge upfront
// allocation or an integer-overflowed index computation.
func TestReadRejectsHostileHeaders(t *testing.T) {
	full := validTraceBytes(t)
	// Header field offsets after magic+version (4 bytes each, little-endian).
	fields := map[string]int{
		"chips": 8, "smsPerChip": 12, "warpsPerSM": 16,
		"lineBytes": 20, "pageBytes": 24, "scale": 28, "kernels": 32,
	}
	hostile := map[string][]uint32{
		"chips":      {0, 1 << 30, ^uint32(0)}, // negative as int32
		"smsPerChip": {0, 1 << 30},
		"warpsPerSM": {0, 1 << 30},
		"lineBytes":  {0, 1 << 24},
		"pageBytes":  {0, 1 << 28},
		"kernels":    {0, 1 << 28},
		"scale":      {^uint32(0)},
	}
	for field, vals := range hostile {
		for _, v := range vals {
			data := append([]byte(nil), full...)
			binary.LittleEndian.PutUint32(data[fields[field]:], v)
			if _, err := Read(bytes.NewReader(data)); err == nil {
				t.Errorf("header with %s=%d accepted", field, int32(v))
			}
		}
	}
}

// TestReadBoundsStreamAllocation: a tiny file claiming a near-cap stream
// length must fail on truncation without materializing the claimed length.
func TestReadBoundsStreamAllocation(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{
		Chips: 1, SMsPerChip: 1, WarpsPerSM: 1,
		LineBytes: 128, PageBytes: 4096, Scale: 1, Kernels: 1, Name: "evil",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Claim 2^28-1 accesses (just under the sanity cap) but provide none.
	var v [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(v[:], 1<<28-1)
	buf.Write(v[:n])
	before := allocBytes()
	if _, err := Read(&buf); err == nil {
		t.Fatal("truncated giant stream accepted")
	}
	// The incremental reader caps speculative allocation at 4096 entries;
	// a failed parse of a <100-byte file must not have allocated the ~6 GiB
	// the length field claims. Allow generous slack for test-runtime noise.
	if grew := allocBytes() - before; grew > 64<<20 {
		t.Fatalf("parse of tiny corrupt file allocated %d bytes", grew)
	}
}

// TestReplayStreamShapeMismatch: a wrong-shape Stream request yields an empty
// stream (the gpu package surfaces the mismatch via CheckMachine at build
// time), never a panic.
func TestReplayStreamShapeMismatch(t *testing.T) {
	rep := NewReplay(capture(t))
	bad := m
	bad.Chips = 4
	st := rep.Stream(bad, 0, 0, 0, 0)
	if st.Len() != 0 {
		t.Fatalf("mismatched machine produced %d accesses", st.Len())
	}
	if _, ok := st.Next(); ok {
		t.Fatal("mismatched stream yielded an access")
	}
}
