package trace

import (
	"fmt"

	"repro/internal/workload"
)

// Replay adapts a loaded Trace to the simulator's Workload interface: the
// gpu package runs it exactly like a synthetic benchmark.
type Replay struct {
	t *Trace
}

// NewReplay wraps a trace for execution.
func NewReplay(t *Trace) *Replay { return &Replay{t: t} }

// SourceName implements gpu.Workload.
func (r *Replay) SourceName() string { return r.t.Header.Name + "(trace)" }

// KernelCount implements gpu.Workload.
func (r *Replay) KernelCount() int { return int(r.t.Header.Kernels) }

// KernelName implements gpu.Workload.
func (r *Replay) KernelName(i int) string { return fmt.Sprintf("k%d", i) }

// CheckMachine verifies a configuration's machine shape matches the shape
// the trace was captured for (streams are per-warp, so they only replay on
// an identical topology).
func (r *Replay) CheckMachine(m workload.Machine) error {
	h := r.t.Header
	if m.Chips != int(h.Chips) || m.SMsPerChip != int(h.SMsPerChip) ||
		m.WarpsPerSM != int(h.WarpsPerSM) || m.Geom.LineBytes != int(h.LineBytes) ||
		m.Geom.PageBytes != int(h.PageBytes) {
		return fmt.Errorf("trace: machine %dx%dx%d/%dB does not match capture %dx%dx%d/%dB",
			m.Chips, m.SMsPerChip, m.WarpsPerSM, m.Geom.LineBytes,
			h.Chips, h.SMsPerChip, h.WarpsPerSM, h.LineBytes)
	}
	return nil
}

// Stream implements gpu.Workload. A machine-shape mismatch yields an empty
// stream rather than a panic; the gpu package calls CheckMachine when the
// system is built, so the mismatch surfaces there as a returned error long
// before any stream is requested.
func (r *Replay) Stream(m workload.Machine, ki, chip, sm, warp int) workload.AccessStream {
	if err := r.CheckMachine(m); err != nil {
		return &sliceStream{}
	}
	return &sliceStream{accs: r.t.Accesses(ki, chip, sm, warp)}
}

// sliceStream replays a recorded access slice.
type sliceStream struct {
	accs []Access
	pos  int
}

// Next implements workload.AccessStream.
func (s *sliceStream) Next() (Access, bool) {
	if s.pos >= len(s.accs) {
		return Access{}, false
	}
	a := s.accs[s.pos]
	s.pos++
	return a, true
}

// Len implements workload.AccessStream.
func (s *sliceStream) Len() int64 { return int64(len(s.accs)) }
