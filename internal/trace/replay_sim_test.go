package trace

import (
	"bytes"
	"testing"

	"repro/internal/gpu"
	"repro/internal/llc"
)

// A replayed trace must reproduce the synthetic run bit-for-bit: same
// cycles, same hits, same traffic.
func TestReplayMatchesSyntheticSimulation(t *testing.T) {
	cfg := gpu.ScaledConfig()
	cfg.Chips = 2
	cfg.SMsPerChip = 2
	cfg.WarpsPerSM = 2
	cfg.SlicesPerChip = 2
	cfg.LLCBytesPerChip = 64 << 10
	cfg.L1BytesPerSM = 4 << 10
	cfg.ChannelsPerChip = 2
	cfg.ChannelBW = 32
	cfg.RingLinkBW = 12
	cfg.WorkloadScale = 256
	cfg.SACOpts.WindowCycles = 1000

	s := spec()
	s.Repeats = 1
	var buf bytes.Buffer
	if err := Capture(&buf, s, cfg.Machine()); err != nil {
		t.Fatal(err)
	}
	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReplay(tr)
	if err := rep.CheckMachine(cfg.Machine()); err != nil {
		t.Fatal(err)
	}

	for _, org := range []llc.Org{llc.MemorySide, llc.SMSide, llc.SAC} {
		synth, err := gpu.Run(cfg.WithOrg(org), s)
		if err != nil {
			t.Fatalf("%s synthetic: %v", org, err)
		}
		replayed, err := gpu.Run(cfg.WithOrg(org), rep)
		if err != nil {
			t.Fatalf("%s replay: %v", org, err)
		}
		if synth.Cycles != replayed.Cycles || synth.MemOps != replayed.MemOps ||
			synth.LLCHits != replayed.LLCHits || synth.RingBytes != replayed.RingBytes ||
			synth.DRAMBytes != replayed.DRAMBytes {
			t.Fatalf("%s: replay diverged:\nsynth:  cyc=%d ops=%d hits=%d ring=%d dram=%d\nreplay: cyc=%d ops=%d hits=%d ring=%d dram=%d",
				org,
				synth.Cycles, synth.MemOps, synth.LLCHits, synth.RingBytes, synth.DRAMBytes,
				replayed.Cycles, replayed.MemOps, replayed.LLCHits, replayed.RingBytes, replayed.DRAMBytes)
		}
	}
}
