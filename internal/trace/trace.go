// Package trace provides capture and replay of memory-access traces.
//
// The synthetic Table-4 workloads (internal/workload) are the default way
// to drive the simulator, but a downstream user reproducing the paper on
// their own kernels will have real traces — from a binary instrumentation
// tool, an architectural simulator, or a previous run of this simulator.
// This package defines a compact binary format for per-warp access streams
// and adapters in both directions:
//
//   - Capture: serialize any workload.Spec's generated streams to a file.
//   - Replay: load a trace file as a workload.Spec-compatible source that
//     the gpu package runs exactly like a synthetic workload.
//
// Format (little-endian): a header (magic, version, machine shape, kernel
// count), then per kernel, per warp: a varint access count followed by
// delta-encoded accesses. Line numbers are encoded as zig-zag deltas from
// the previous line, which compresses the blocked sequential walks real
// streams are full of.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/memsys"
	"repro/internal/workload"
)

// Magic identifies a trace stream.
const Magic = 0x53414354 // "SACT"

// Version of the format.
const Version = 2

// Access is one replayed memory operation.
type Access = workload.Access

// Header describes the machine shape a trace was captured for. Replay
// requires an identical shape (streams are per-warp).
type Header struct {
	Chips      int32
	SMsPerChip int32
	WarpsPerSM int32
	LineBytes  int32
	PageBytes  int32
	Scale      int32
	Kernels    int32
	Name       string
}

// Writer serializes streams.
type Writer struct {
	w   *bufio.Writer
	err error
}

// NewWriter starts a trace on w with the given header.
func NewWriter(w io.Writer, h Header) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	tw := &Writer{w: bw}
	tw.u32(Magic)
	tw.u32(Version)
	tw.u32(uint32(h.Chips))
	tw.u32(uint32(h.SMsPerChip))
	tw.u32(uint32(h.WarpsPerSM))
	tw.u32(uint32(h.LineBytes))
	tw.u32(uint32(h.PageBytes))
	tw.u32(uint32(h.Scale))
	tw.u32(uint32(h.Kernels))
	tw.str(h.Name)
	return tw, tw.err
}

func (t *Writer) u32(v uint32) {
	if t.err != nil {
		return
	}
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	_, t.err = t.w.Write(buf[:])
}

func (t *Writer) uvarint(v uint64) {
	if t.err != nil {
		return
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, t.err = t.w.Write(buf[:n])
}

func (t *Writer) str(s string) {
	t.uvarint(uint64(len(s)))
	if t.err == nil {
		_, t.err = t.w.WriteString(s)
	}
}

// zigzag encodes a signed delta as unsigned.
func zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }

func unzigzag(v uint64) int64 { return int64(v>>1) ^ -int64(v&1) }

// WarpStream writes one warp's complete stream: the access count followed
// by (lineDelta, kind|gap) pairs. Streams must be written in warp order:
// for each kernel, for each chip, SM, warp.
func (t *Writer) WarpStream(accs []Access) error {
	t.uvarint(uint64(len(accs)))
	prev := int64(0)
	for _, a := range accs {
		t.uvarint(zigzag(int64(a.Line) - prev))
		prev = int64(a.Line)
		meta := uint64(a.Gap) << 1
		if a.Kind == memsys.Write {
			meta |= 1
		}
		t.uvarint(meta)
	}
	return t.err
}

// Flush completes the trace.
func (t *Writer) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Capture serializes every warp stream of spec (for machine m) to w.
func Capture(w io.Writer, spec workload.Spec, m workload.Machine) error {
	if err := m.Validate(); err != nil {
		return err
	}
	h := Header{
		Chips:      int32(m.Chips),
		SMsPerChip: int32(m.SMsPerChip),
		WarpsPerSM: int32(m.WarpsPerSM),
		LineBytes:  int32(m.Geom.LineBytes),
		PageBytes:  int32(m.Geom.PageBytes),
		Scale:      int32(m.Scale),
		Kernels:    int32(spec.KernelCount()),
		Name:       spec.Name,
	}
	tw, err := NewWriter(w, h)
	if err != nil {
		return err
	}
	var buf []Access
	for ki := 0; ki < spec.KernelCount(); ki++ {
		for chip := 0; chip < m.Chips; chip++ {
			for sm := 0; sm < m.SMsPerChip; sm++ {
				for warp := 0; warp < m.WarpsPerSM; warp++ {
					st := spec.NewStream(m, ki, chip, sm, warp)
					buf = buf[:0]
					for {
						a, ok := st.Next()
						if !ok {
							break
						}
						buf = append(buf, a)
					}
					if err := tw.WarpStream(buf); err != nil {
						return err
					}
				}
			}
		}
	}
	return tw.Flush()
}

// Trace is a fully loaded trace: per kernel, per warp access streams.
type Trace struct {
	Header  Header
	streams [][][]Access // [kernel][warpIndex][access]
}

// Read loads a complete trace.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	rd := &reader{r: br}
	if m := rd.u32(); m != Magic {
		return nil, fmt.Errorf("trace: bad magic %#x", m)
	}
	if v := rd.u32(); v != Version {
		return nil, fmt.Errorf("trace: unsupported version %d (want %d)", v, Version)
	}
	h := Header{
		Chips:      int32(rd.u32()),
		SMsPerChip: int32(rd.u32()),
		WarpsPerSM: int32(rd.u32()),
		LineBytes:  int32(rd.u32()),
		PageBytes:  int32(rd.u32()),
		Scale:      int32(rd.u32()),
		Kernels:    int32(rd.u32()),
	}
	h.Name = rd.str()
	if rd.err != nil {
		return nil, rd.err
	}
	if err := h.validate(); err != nil {
		return nil, err
	}
	warps := int(h.Chips) * int(h.SMsPerChip) * int(h.WarpsPerSM)
	tr := &Trace{Header: h, streams: make([][][]Access, h.Kernels)}
	for ki := range tr.streams {
		tr.streams[ki] = make([][]Access, warps)
		for w := 0; w < warps; w++ {
			n := rd.uvarint()
			if rd.err != nil {
				return nil, fmt.Errorf("trace: truncated at kernel %d warp %d: %w", ki, w, rd.err)
			}
			const sanity = 1 << 28
			if n > sanity {
				return nil, fmt.Errorf("trace: implausible stream length %d", n)
			}
			// Grow incrementally: a corrupt count must not allocate more
			// than the bytes actually present in the stream can justify
			// (every access costs at least two bytes on the wire).
			accs := make([]Access, 0, min(n, 4096))
			prev := int64(0)
			for i := uint64(0); i < n; i++ {
				prev += unzigzag(rd.uvarint())
				meta := rd.uvarint()
				if rd.err != nil {
					return nil, fmt.Errorf("trace: truncated stream at kernel %d warp %d: %w", ki, w, rd.err)
				}
				a := Access{Line: uint64(prev), Gap: int(meta >> 1)}
				if meta&1 != 0 {
					a.Kind = memsys.Write
				}
				accs = append(accs, a)
			}
			tr.streams[ki][w] = accs
		}
	}
	return tr, nil
}

// validate bounds a decoded header: positive shape fields within generous
// hardware limits, so corrupt files fail cleanly instead of driving huge
// allocations.
func (h Header) validate() error {
	switch {
	case h.Chips <= 0 || h.Chips > 64:
		return fmt.Errorf("trace: corrupt header: chips %d", h.Chips)
	case h.SMsPerChip <= 0 || h.SMsPerChip > 1024:
		return fmt.Errorf("trace: corrupt header: SMs/chip %d", h.SMsPerChip)
	case h.WarpsPerSM <= 0 || h.WarpsPerSM > 1024:
		return fmt.Errorf("trace: corrupt header: warps/SM %d", h.WarpsPerSM)
	case h.Kernels <= 0 || h.Kernels > 1<<12:
		return fmt.Errorf("trace: corrupt header: kernels %d", h.Kernels)
	case h.LineBytes <= 0 || h.LineBytes > 1<<16:
		return fmt.Errorf("trace: corrupt header: line bytes %d", h.LineBytes)
	case h.PageBytes <= 0 || h.PageBytes > 1<<24:
		return fmt.Errorf("trace: corrupt header: page bytes %d", h.PageBytes)
	case h.Scale < 0:
		return fmt.Errorf("trace: corrupt header: scale %d", h.Scale)
	case int64(h.Chips)*int64(h.SMsPerChip)*int64(h.WarpsPerSM) > 1<<17:
		// 10x the paper's full-scale machine (12288 warps); together with the
		// kernel cap this bounds Read's upfront slice-header allocation to a
		// few MB regardless of input.
		return fmt.Errorf("trace: corrupt header: %d warps total", int64(h.Chips)*int64(h.SMsPerChip)*int64(h.WarpsPerSM))
	}
	return nil
}

type reader struct {
	r   *bufio.Reader
	err error
}

func (r *reader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	var buf [4]byte
	if _, err := io.ReadFull(r.r, buf[:]); err != nil {
		r.err = err
		return 0
	}
	return binary.LittleEndian.Uint32(buf[:])
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(r.r)
	if err != nil {
		r.err = err
	}
	return v
}

func (r *reader) str() string {
	n := r.uvarint()
	if r.err != nil || n > 1<<16 {
		if r.err == nil {
			r.err = fmt.Errorf("trace: implausible string length %d", n)
		}
		return ""
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r.r, buf); err != nil {
		r.err = err
		return ""
	}
	return string(buf)
}

// Machine reconstructs the machine shape the trace was captured for.
func (t *Trace) Machine() workload.Machine {
	return workload.Machine{
		Chips:      int(t.Header.Chips),
		SMsPerChip: int(t.Header.SMsPerChip),
		WarpsPerSM: int(t.Header.WarpsPerSM),
		Geom: memsys.Geometry{
			LineBytes: int(t.Header.LineBytes),
			PageBytes: int(t.Header.PageBytes),
			Sectors:   4,
		},
		Scale: int(t.Header.Scale),
	}
}

// Accesses returns one warp's stream of one kernel (shared slice: callers
// must not mutate).
func (t *Trace) Accesses(kernel, chip, sm, warp int) []Access {
	warps := int(t.Header.SMsPerChip) * int(t.Header.WarpsPerSM)
	idx := chip*warps + sm*int(t.Header.WarpsPerSM) + warp
	return t.streams[kernel][idx]
}

// TotalAccesses counts every access in the trace.
func (t *Trace) TotalAccesses() int64 {
	var n int64
	for _, k := range t.streams {
		for _, w := range k {
			n += int64(len(w))
		}
	}
	return n
}
