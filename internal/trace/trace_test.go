package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/memsys"
	"repro/internal/workload"
)

var m = workload.Machine{
	Chips:      2,
	SMsPerChip: 2,
	WarpsPerSM: 2,
	Geom:       memsys.Geometry{LineBytes: 128, PageBytes: 4096, Sectors: 4},
	Scale:      256,
}

func spec() workload.Spec {
	return workload.Spec{
		Name: "t", CTAs: 8, Repeats: 2,
		Kernels: []workload.Kernel{{
			Name: "k", PrivateMB: 4, FalseMB: 2, TrueMB: 2,
			BlockLines: 8, ReusePriv: 2, ReuseTrue: 2, SharersTrue: 2,
			PassesFalse: 2, TrueWindowMB: 0.5,
			WriteFrac: 0.2, ComputeGap: 2,
		}},
	}
}

func capture(t *testing.T) *Trace {
	t.Helper()
	var buf bytes.Buffer
	if err := Capture(&buf, spec(), m); err != nil {
		t.Fatal(err)
	}
	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRoundTripIdentical(t *testing.T) {
	tr := capture(t)
	if tr.Header.Name != "t" || tr.Header.Kernels != 2 {
		t.Fatalf("header %+v", tr.Header)
	}
	// Every replayed stream must match the synthetic stream exactly.
	s := spec()
	for ki := 0; ki < s.KernelCount(); ki++ {
		for chip := 0; chip < m.Chips; chip++ {
			for smi := 0; smi < m.SMsPerChip; smi++ {
				for w := 0; w < m.WarpsPerSM; w++ {
					want := s.NewStream(m, ki, chip, smi, w)
					got := tr.Accesses(ki, chip, smi, w)
					i := 0
					for {
						a, ok := want.Next()
						if !ok {
							break
						}
						if i >= len(got) {
							t.Fatalf("k%d c%d s%d w%d: replay too short (%d)", ki, chip, smi, w, len(got))
						}
						if got[i] != a {
							t.Fatalf("k%d c%d s%d w%d access %d: %+v != %+v", ki, chip, smi, w, i, got[i], a)
						}
						i++
					}
					if i != len(got) {
						t.Fatalf("replay too long: %d vs %d", len(got), i)
					}
				}
			}
		}
	}
}

func TestReplayMachineAndCounts(t *testing.T) {
	tr := capture(t)
	rm := tr.Machine()
	if rm.Chips != m.Chips || rm.SMsPerChip != m.SMsPerChip || rm.Scale != m.Scale {
		t.Fatalf("machine %+v", rm)
	}
	if tr.TotalAccesses() == 0 {
		t.Fatal("empty trace")
	}
	rep := NewReplay(tr)
	if rep.KernelCount() != 2 || rep.SourceName() != "t(trace)" {
		t.Fatalf("replay meta %q %d", rep.SourceName(), rep.KernelCount())
	}
	if err := rep.CheckMachine(m); err != nil {
		t.Fatal(err)
	}
	bad := m
	bad.Chips = 4
	if err := rep.CheckMachine(bad); err == nil {
		t.Fatal("mismatched machine accepted")
	}
	st := rep.Stream(m, 0, 0, 0, 0)
	n := int64(0)
	for {
		_, ok := st.Next()
		if !ok {
			break
		}
		n++
	}
	if n != st.Len() {
		t.Fatalf("stream emitted %d, Len %d", n, st.Len())
	}
}

func TestReadRejectsCorruptInput(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("garbage!"))); err == nil {
		t.Fatal("garbage accepted")
	}
	var buf bytes.Buffer
	if err := Capture(&buf, spec(), m); err != nil {
		t.Fatal(err)
	}
	// Truncation at any point must error, not panic.
	full := buf.Bytes()
	for _, cut := range []int{4, 10, len(full) / 2, len(full) - 3} {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Bad version.
	bad := append([]byte(nil), full...)
	bad[4] = 99
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestZigzagProperty(t *testing.T) {
	f := func(v int64) bool { return unzigzag(zigzag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWriterStreamEncoding(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{
		Chips: 1, SMsPerChip: 1, WarpsPerSM: 1,
		LineBytes: 128, PageBytes: 4096, Scale: 1, Kernels: 1, Name: "x",
	})
	if err != nil {
		t.Fatal(err)
	}
	accs := []Access{
		{Line: 100, Kind: memsys.Read, Gap: 3},
		{Line: 101, Kind: memsys.Write, Gap: 0},
		{Line: 50, Kind: memsys.Read, Gap: 7}, // negative delta
	}
	if err := w.WarpStream(accs); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := tr.Accesses(0, 0, 0, 0)
	if len(got) != 3 {
		t.Fatalf("got %d accesses", len(got))
	}
	for i := range accs {
		if got[i] != accs[i] {
			t.Fatalf("access %d: %+v != %+v", i, got[i], accs[i])
		}
	}
}

// Property: any access sequence round-trips through the wire format.
func TestWarpStreamRoundTripProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		accs := make([]Access, len(raw))
		for i, v := range raw {
			accs[i].Line = uint64(v >> 3)
			accs[i].Gap = int(v & 3)
			if v&4 != 0 {
				accs[i].Kind = memsys.Write
			}
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, Header{
			Chips: 1, SMsPerChip: 1, WarpsPerSM: 1,
			LineBytes: 128, PageBytes: 4096, Scale: 1, Kernels: 1, Name: "p",
		})
		if err != nil {
			return false
		}
		if w.WarpStream(accs) != nil || w.Flush() != nil {
			return false
		}
		tr, err := Read(&buf)
		if err != nil {
			return false
		}
		got := tr.Accesses(0, 0, 0, 0)
		if len(got) != len(accs) {
			return false
		}
		for i := range accs {
			if got[i] != accs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
