package workload

import "fmt"

// The catalog reproduces Table 4 of the paper: 16 benchmarks from five
// suites, the top half SM-side preferred (SP) and the bottom half
// memory-side preferred (MP). The footprint columns (total / truly shared /
// falsely shared MB) are taken from the table verbatim (private = footprint
// − true − false); kernels of a benchmark overlay the same address space, so
// repeated invocations re-touch the same data, as iterative GPU kernels do.
//
// The locality knobs are chosen to reproduce each benchmark's *sharing
// structure* as analysed in Figure 11:
//
//   - SP benchmarks keep a small truly-shared working set per time window
//     (TrueWindowMB at most ~2 MB: replicating it across four chips fits
//     comfortably in the system LLC) and/or a large falsely-shared set that
//     SM-side caching serves locally instead of across the ring.
//   - MP benchmarks keep a large truly-shared working set even over long
//     windows (replication thrashes the per-chip LLC and pollutes the
//     private data that dominates their footprint), and most run as a
//     sequence of kernel invocations, which charges the SM-side
//     configuration an LLC flush at every kernel boundary.

func spKernel(name string, privMB, falseMB, trueMB, windowMB float64) Kernel {
	return Kernel{
		Name:      name,
		PrivateMB: privMB, FalseMB: falseMB, TrueMB: trueMB,
		BlockLines: 32,
		ReusePriv:  2, ReuseFalse: 1,
		ReuseTrue: 2, SharersTrue: 3,
		PassesPriv: 1, PassesFalse: 3,
		TrueWindowMB:  windowMB,
		FalseWindowMB: 1.0,
		WriteFrac:     0.15,
		ComputeGap:    1,
	}
}

func mpKernel(name string, privMB, falseMB, trueMB, windowMB float64) Kernel {
	return Kernel{
		Name:      name,
		PrivateMB: privMB, FalseMB: falseMB, TrueMB: trueMB,
		// Blocks sized past the per-warp L1 share but within the chip LLC:
		// memory-side retains them, SM-side replication pollution evicts them.
		BlockLines: 24,
		ReusePriv:  3, ReuseFalse: 1, ReuseTrue: 3,
		PassesPriv: 1, PassesFalse: 2,
		TrueWindowMB: windowMB,
		WriteFrac:    0.25,
		ComputeGap:   1,
	}
}

// Catalog returns the 16 benchmarks of Table 4 in paper order (SP first).
func Catalog() []Spec {
	return []Spec{
		// --- SM-side preferred (top half of Table 4) ---
		{Name: "RN", Suite: "Tango", CTAs: 512, SMSide: true, Repeats: 1,
			Kernels: []Kernel{spKernel("rn", 6, 4, 11, 2.2)}},
		{Name: "AN", Suite: "Tango", CTAs: 1024, SMSide: true, Repeats: 1,
			Kernels: []Kernel{spKernel("an", 8, 3, 9, 2.2)}},
		{Name: "SN", Suite: "Tango", CTAs: 512, SMSide: true, Repeats: 1,
			Kernels: []Kernel{spKernel("sn", 3, 13, 2, 1.8)}},
		{Name: "CFD", Suite: "Rodinia", CTAs: 4031, SMSide: true, Repeats: 1,
			Kernels: []Kernel{spKernel("cfd", 55, 33, 9, 1.2)}},
		// BFS alternates a memory-side-preferred kernel K1 (the whole truly
		// shared set is hot: full-graph expansion) with an SM-side-preferred
		// kernel K2 (small hot frontier) — the substrate of Figure 12.
		{Name: "BFS", Suite: "Rodinia", CTAs: 1954, SMSide: true, Repeats: 2,
			Kernels: []Kernel{
				func() Kernel {
					k := mpKernel("bfs-k1", 13, 14, 10, 10)
					k.WriteFrac = 0.08 // expansion mostly reads; cheap handoff to K2
					// The per-chip visited/cost arrays fit the chip LLC and are
					// re-read each expansion: memory-side retains them, the
					// replicated frontier churns them out under SM-side.
					k.ReusePriv, k.PassesPriv = 1, 3
					return k
				}(),
				spKernel("bfs-k2", 4, 7, 5, 1.0),
			}},
		{Name: "3DC", Suite: "Polybench", CTAs: 2048, SMSide: true, Repeats: 1,
			Kernels: []Kernel{func() Kernel {
				k := spKernel("3dc", 43, 38, 17, 1.2)
				k.ReuseTrue = 3 // atypical: weaker sharing, minor org difference (§5.3)
				k.PassesFalse = 2
				return k
			}()}},
		{Name: "BS", Suite: "NvidiaSDK", CTAs: 480, SMSide: true, Repeats: 1,
			Kernels: []Kernel{func() Kernel {
				k := spKernel("bs", 20, 56, 0, 0)
				k.ReuseFalse = 2 // atypical: no true sharing at all
				return k
			}()}},
		{Name: "BT", Suite: "Rodinia", CTAs: 48096, SMSide: true, Repeats: 1,
			Kernels: []Kernel{spKernel("bt", 8, 19, 4, 1.8)}},

		// --- Memory-side preferred (bottom half of Table 4) ---
		{Name: "SRAD", Suite: "Rodinia", CTAs: 65536, SMSide: false, Repeats: 2,
			Kernels: []Kernel{func() Kernel {
				k := mpKernel("srad", 720, 3, 30, 12)
				k.ReusePriv = 2 // large streaming image: modest block reuse
				return k
			}()}},
		{Name: "GEMM", Suite: "Polybench", CTAs: 2048, SMSide: false, Repeats: 2,
			Kernels: []Kernel{mpKernel("gemm", 139, 21, 14, 8)}},
		{Name: "LUD", Suite: "Rodinia", CTAs: 131068, SMSide: false, Repeats: 3,
			Kernels: []Kernel{mpKernel("lud", 228, 51, 38, 8)}},
		{Name: "STEN", Suite: "Parboil", CTAs: 1024, SMSide: false, Repeats: 3,
			Kernels: []Kernel{mpKernel("sten", 170, 17, 18, 8)}},
		{Name: "3MM", Suite: "Polybench", CTAs: 4096, SMSide: false, Repeats: 3,
			Kernels: []Kernel{mpKernel("3mm", 90, 7, 12, 8)}},
		{Name: "BP", Suite: "Rodinia", CTAs: 65536, SMSide: false, Repeats: 2,
			Kernels: []Kernel{mpKernel("bp", 72, 0, 4, 4)}},
		{Name: "DWT", Suite: "Rodinia", CTAs: 91373, SMSide: false, Repeats: 2,
			Kernels: []Kernel{mpKernel("dwt", 194, 10, 3, 3)}},
		{Name: "NN", Suite: "Tango", CTAs: 60000, SMSide: false, Repeats: 1,
			Kernels: []Kernel{func() Kernel {
				k := mpKernel("nn", 1234, 0, 154, 6)
				k.ReusePriv = 2 // activation tiles re-read at LLC reach
				k.ReuseTrue = 2 // weights: shared but a modest traffic share
				return k
			}()}},
	}
}

// Table4Row is the paper-reported characterization of one benchmark.
type Table4Row struct {
	Name        string
	CTAs        int
	FootprintMB float64
	TrueMB      float64
	FalseMB     float64
}

// Table4 returns the paper's Table 4 rows verbatim, in paper order.
// At workload scale s, the measured footprints are these divided by s.
func Table4() []Table4Row {
	return []Table4Row{
		{"RN", 512, 21, 11, 4},
		{"AN", 1024, 20, 9, 3},
		{"SN", 512, 18, 2, 13},
		{"CFD", 4031, 97, 9, 33},
		{"BFS", 1954, 37, 10, 14},
		{"3DC", 2048, 98, 17, 38},
		{"BS", 480, 76, 0, 56},
		{"BT", 48096, 31, 4, 19},
		{"SRAD", 65536, 753, 30, 3},
		{"GEMM", 2048, 174, 14, 21},
		{"LUD", 131068, 317, 38, 51},
		{"STEN", 1024, 205, 18, 17},
		{"3MM", 4096, 109, 12, 7},
		{"BP", 65536, 76, 4, 0},
		{"DWT", 91373, 207, 3, 10},
		{"NN", 60000, 1388, 154, 0},
	}
}

// ByName returns the catalog spec with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Names returns the benchmark names in paper order.
func Names() []string {
	c := Catalog()
	out := make([]string, len(c))
	for i, s := range c {
		out[i] = s.Name
	}
	return out
}

// ScaleInput returns a copy of s with every region footprint (and the
// truly-shared window) multiplied by factor — the input-set sweep of
// Figure 13. Factors below 1 shrink the input (÷4 = 0.25), above 1 grow it.
func (s Spec) ScaleInput(factor float64) Spec {
	out := s
	out.Kernels = make([]Kernel, len(s.Kernels))
	for i, k := range s.Kernels {
		k.PrivateMB *= factor
		k.FalseMB *= factor
		k.TrueMB *= factor
		k.TrueWindowMB *= factor
		out.Kernels[i] = k
	}
	if factor != 1 {
		out.Name = fmt.Sprintf("%s(x%.3g)", s.Name, factor)
	}
	return out
}
