// Package workload generates the synthetic GPU kernels that stand in for
// the paper's 16 CUDA benchmarks (Rodinia, Polybench, Tango, Nvidia SDK,
// Parboil). Each benchmark is a deterministic address-stream specification
// parameterized by Table 4 of the paper — CTA count, footprint, truly-shared
// and falsely-shared megabytes — plus locality knobs (block size, reuse,
// passes, truly-shared window) that reproduce the sharing *structure* the
// paper measures in Figure 11.
//
// A kernel's address space is split into three regions:
//
//   - private: page-aligned per-chip blocks, partitioned across the chip's
//     warps; every page is touched by exactly one chip → non-shared lines.
//   - false:   pages whose lines are statically partitioned across chips
//     (chip k owns lines [k*q, (k+1)*q) of every page); every page is
//     touched by all chips but every line by exactly one → falsely shared.
//   - true:    lines accessed by every chip. Chips walk the region in
//     synchronized windows: all chips' warps cover the same window of
//     TrueWindow lines at roughly the same time, then advance. A small
//     window (SM-side-preferred benchmarks) replicates cheaply across
//     chips; a window that exceeds per-chip LLC capacity (memory-side-
//     preferred benchmarks) thrashes when replicated.
//
// Streams depend only on (benchmark, machine shape, chip, sm, warp) — never
// on timing — so the same workload replays identically under every LLC
// organization.
package workload

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/memsys"
)

// Machine describes the shape of the simulated GPU the streams are built
// for. Scale divides all full-scale region sizes (see DESIGN.md §7).
type Machine struct {
	Chips      int
	SMsPerChip int
	WarpsPerSM int
	Geom       memsys.Geometry
	Scale      int // footprint divisor; 1 = paper scale
}

// WarpsPerChip returns the number of warps per chip.
func (m Machine) WarpsPerChip() int { return m.SMsPerChip * m.WarpsPerSM }

// TotalWarps returns the warps across all chips.
func (m Machine) TotalWarps() int { return m.Chips * m.WarpsPerChip() }

// Validate checks the machine shape.
func (m Machine) Validate() error {
	if m.Chips < 1 || m.SMsPerChip < 1 || m.WarpsPerSM < 1 {
		return fmt.Errorf("workload: non-positive machine shape %+v", m)
	}
	if m.Scale < 1 {
		return fmt.Errorf("workload: scale must be >= 1, got %d", m.Scale)
	}
	return m.Geom.Validate()
}

// Kernel parameterizes one kernel invocation's address stream.
type Kernel struct {
	Name string

	// Region footprints at full (paper) scale, in MB.
	PrivateMB float64
	FalseMB   float64
	TrueMB    float64

	// Locality structure.
	BlockLines    int     // private/false walk block (lines walked ReuseX times)
	ReusePriv     int     // consecutive passes over each private block
	ReuseFalse    int     // consecutive passes over each false block
	ReuseTrue     int     // rotated long-range passes over each true window
	SharersTrue   int     // SMs of a chip reading each true line concurrently (default 1)
	PassesPriv    int     // full passes over the private share
	PassesFalse   int     // rotated passes over each false window (intra-chip sharers)
	TrueWindowMB  float64 // hot truly-shared window (0 = whole region)
	FalseWindowMB float64 // hot falsely-shared window (0 = whole region)

	// Intensity.
	WriteFrac  float64 // fraction of accesses that are stores
	ComputeGap int     // average cycles between a warp's memory ops
}

// Spec is a benchmark: a sequence of kernels repeated Repeats times.
type Spec struct {
	Name    string
	Suite   string
	CTAs    int
	SMSide  bool // the paper's ground-truth grouping (top half of Table 4)
	Kernels []Kernel
	Repeats int // times the kernel sequence runs (>=1)
}

// KernelCount returns the total number of kernel invocations.
func (s Spec) KernelCount() int {
	r := s.Repeats
	if r < 1 {
		r = 1
	}
	return r * len(s.Kernels)
}

// KernelAt returns the kernel spec of invocation i (0-based) across repeats.
func (s Spec) KernelAt(i int) Kernel { return s.Kernels[i%len(s.Kernels)] }

// Layout fixes the line-index geography of one kernel at one machine scale.
type Layout struct {
	Geom memsys.Geometry

	PrivBase   uint64 // first private line
	PrivLines  int    // total private lines (page-multiple)
	FalseBase  uint64
	FalseLines int // total false lines (page-multiple)
	TrueBase   uint64
	TrueLines  int

	WindowLines      int // truly-shared window (<= TrueLines)
	FalseWindowPages int // falsely-shared window, in pages
}

// TotalLines returns the kernel's total footprint in lines.
func (l Layout) TotalLines() int { return l.PrivLines + l.FalseLines + l.TrueLines }

func mbToLines(mb float64, scale int, lineBytes int) int {
	lines := int(mb * 1024 * 1024 / float64(scale) / float64(lineBytes))
	return lines
}

func roundUpTo(v, m int) int {
	if m <= 0 {
		return v
	}
	return (v + m - 1) / m * m
}

// LayoutFor computes the region geography of kernel k on machine m. Kernels
// of the same benchmark share one address space (regions at the same bases),
// so data placed by one kernel is reused by the next — the substrate for the
// per-kernel behaviour of Figure 12.
func (s Spec) LayoutFor(ki int, m Machine) Layout {
	// Use the maximum region sizes across the benchmark's kernels for the
	// shared bases so that kernels overlay consistently.
	var maxPriv, maxFalse, maxTrue int
	lpp := m.Geom.LinesPerPage()
	for _, k := range s.Kernels {
		maxPriv = max(maxPriv, roundUpTo(mbToLines(k.PrivateMB, m.Scale, m.Geom.LineBytes), lpp*m.Chips))
		maxFalse = max(maxFalse, roundUpTo(mbToLines(k.FalseMB, m.Scale, m.Geom.LineBytes), lpp))
		maxTrue = max(maxTrue, roundUpTo(mbToLines(k.TrueMB, m.Scale, m.Geom.LineBytes), lpp))
	}
	k := s.KernelAt(ki)
	priv := roundUpTo(mbToLines(k.PrivateMB, m.Scale, m.Geom.LineBytes), lpp*m.Chips)
	fal := roundUpTo(mbToLines(k.FalseMB, m.Scale, m.Geom.LineBytes), lpp)
	tru := roundUpTo(mbToLines(k.TrueMB, m.Scale, m.Geom.LineBytes), lpp)

	l := Layout{Geom: m.Geom}
	l.PrivBase = 0
	l.PrivLines = priv
	l.FalseBase = uint64(roundUpTo(maxPriv, lpp))
	l.FalseLines = fal
	l.TrueBase = l.FalseBase + uint64(roundUpTo(maxFalse, lpp))
	l.TrueLines = tru

	if k.TrueWindowMB > 0 {
		w := mbToLines(k.TrueWindowMB, m.Scale, m.Geom.LineBytes)
		l.WindowLines = max(min(w, tru), min(tru, lpp))
	} else {
		l.WindowLines = tru
	}
	falsePages := fal / lpp
	if k.FalseWindowMB > 0 {
		w := mbToLines(k.FalseWindowMB, m.Scale, m.Geom.LineBytes) / lpp
		l.FalseWindowPages = max(min(w, falsePages), min(falsePages, 1))
	} else {
		l.FalseWindowPages = falsePages
	}
	return l
}

// Access is one memory operation of a warp's stream.
type Access struct {
	Line uint64
	Kind memsys.AccessKind
	Gap  int // compute cycles the warp spends before issuing this access
}

// AccessStream is the per-warp sequence consumed by the simulator. The
// synthetic Stream implements it; so do trace replays.
type AccessStream interface {
	// Next returns the stream's next access; ok is false when exhausted.
	Next() (Access, bool)
	// Len returns the total number of accesses the stream produces.
	Len() int64
}

// Stream produces one warp's deterministic access sequence. It is a stride
// (deficit) scheduler over up to three region walks, so the region mix stays
// smooth over time and all walks finish together.
type Stream struct {
	walks   []walker
	credit  []int64
	share   []int64
	total   int64
	emitted int64
	salt    uint64
	write   uint64 // writeFrac in parts per 1<<16
	gap     int
}

type walker interface {
	next() uint64 // next line; only called while remaining() > 0
	remaining() int64
}

// Len returns the total number of accesses the stream will produce.
func (st *Stream) Len() int64 { return st.total }

// Next returns the stream's next access; ok is false when exhausted.
func (st *Stream) Next() (Access, bool) {
	// Stride-schedule: pick the walk with the highest credit.
	best := -1
	var bestCredit int64
	for i, w := range st.walks {
		if w.remaining() <= 0 {
			continue
		}
		st.credit[i] += st.share[i]
		if best == -1 || st.credit[i] > bestCredit {
			best, bestCredit = i, st.credit[i]
		}
	}
	if best < 0 {
		return Access{}, false
	}
	st.credit[best] -= st.total
	line := st.walks[best].next()
	st.emitted++
	kind := memsys.Read
	h := addr.Mix64(st.salt ^ uint64(st.emitted)<<1)
	if st.write > 0 && h&0xffff < st.write {
		kind = memsys.Write
	}
	gap := st.gap
	if gap > 1 {
		// Jitter the gap ±25% so warps do not lock-step.
		gap += int((h>>16)%uint64(gap/2+1)) - gap/4
	}
	return Access{Line: line, Kind: kind, Gap: gap}, true
}

// blockWalker walks a contiguous share of lines in blocks: each block of
// blockLines is walked reuse times before advancing; the whole share is
// covered passes times.
type blockWalker struct {
	base   uint64
	lines  int64
	block  int64
	reuse  int64
	passes int64
	pos    int64 // access counter
}

func newBlockWalker(base uint64, lines, block, reuse, passes int) *blockWalker {
	if lines <= 0 {
		return nil
	}
	if block <= 0 || int64(block) > int64(lines) {
		block = lines
	}
	if reuse < 1 {
		reuse = 1
	}
	if passes < 1 {
		passes = 1
	}
	return &blockWalker{
		base: base, lines: int64(lines), block: int64(block),
		reuse: int64(reuse), passes: int64(passes),
	}
}

func (w *blockWalker) remaining() int64 {
	return w.lines*w.reuse*w.passes - w.pos
}

func (w *blockWalker) next() uint64 {
	perPass := w.lines * w.reuse
	inPass := w.pos % perPass
	blockIdx := inPass / (w.block * w.reuse)
	inBlock := inPass % (w.block * w.reuse) % w.block
	line := blockIdx*w.block + inBlock
	if line >= w.lines { // tail block shorter than block size
		line = w.lines - 1 - (line - w.lines)
	}
	w.pos++
	return w.base + uint64(line)
}

// rotor enumerates the rotated slot walk shared by the false and true
// walkers. A region of n items is divided into warps slots; the walk
// performs a number of passes, and in pass p the warp covers slot
// (warpIdx + p*rot) mod warps — with rot equal to the machine's warps-per-SM
// so that consecutive passes land the same items in a *different SM's*
// warp. Per-warp consecutive reuse would be absorbed by the private L1;
// rotated reuse reaches the LLC, producing the intra-chip line sharing that
// GPU kernels exhibit (many SMs reading the same tiles) and that the LLC
// organizations of the paper differ on.
type rotor struct {
	n      int64 // items in the region
	warps  int64
	warpID int64
	rot    int64
	passes int64

	pass     int64
	off      int64
	lo, hi   int64 // current slot bounds
	perRound int64 // total items this warp touches across all passes
}

func newRotor(n, warps, warpID, rot, passes int64) rotor {
	if passes < 1 {
		passes = 1
	}
	if rot < 1 {
		rot = 1
	}
	r := rotor{n: n, warps: warps, warpID: warpID, rot: rot, passes: passes}
	for p := int64(0); p < passes; p++ {
		lo, hi := splitRange(n, warps, r.slot(p))
		r.perRound += hi - lo
	}
	r.lo, r.hi = splitRange(n, warps, r.slot(0))
	return r
}

func (r *rotor) slot(pass int64) int64 { return (r.warpID + pass*r.rot) % r.warps }

// skipEmpty advances past empty slots; callers must only invoke it while
// the rotor has items remaining overall (perRound > 0).
func (r *rotor) skipEmpty() {
	for r.hi <= r.lo {
		r.advancePass()
	}
}

// item returns the current item index without advancing.
func (r *rotor) item() int64 {
	r.skipEmpty()
	return r.lo + r.off
}

// next advances to the following item; wrapped reports that the walk
// finished its last pass and started over.
func (r *rotor) next() (wrapped bool) {
	r.skipEmpty()
	r.off++
	if r.off >= r.hi-r.lo {
		r.off = 0
		wrapped = r.advancePass()
	}
	return wrapped
}

func (r *rotor) advancePass() (wrapped bool) {
	r.pass++
	if r.pass >= r.passes {
		r.pass = 0
		wrapped = true
	}
	r.lo, r.hi = splitRange(r.n, r.warps, r.slot(r.pass))
	return wrapped
}

// falseWalker walks the chip's quarter of every page of the false region:
// chip k owns lines [k*q, (k+1)*q) of each page. The chip's warps cover the
// page sequence in rotated slots (see rotor), so each page quarter is
// re-read by PassesFalse different SMs of the chip — falsely-shared lines
// with intra-chip LLC-level reuse.
type falseWalker struct {
	layout Layout
	chip   int64
	q      int64 // lines per page per chip
	pages  int64 // total pages in the region
	rot    rotor // rotated slots over the pages of one window
	win    int64
	wins   int64
	inPage int64 // line offset within the current page's quarter
	total  int64
	pos    int64
}

func newFalseWalker(l Layout, m Machine, chip, warpInChip int, reuse, passes int) *falseWalker {
	if l.FalseLines <= 0 {
		return nil
	}
	_ = reuse // inner line reuse is L1-absorbed; rotation supplies LLC reuse
	lpp := int64(l.Geom.LinesPerPage())
	pages := int64(l.FalseLines) / lpp
	if pages == 0 {
		return nil
	}
	winPages := int64(l.FalseWindowPages)
	if winPages <= 0 || winPages > pages {
		winPages = pages
	}
	w := &falseWalker{
		layout: l,
		chip:   int64(chip),
		q:      lpp / int64(m.Chips),
		pages:  pages,
		rot: newRotor(winPages, int64(m.WarpsPerChip()), int64(warpInChip),
			int64(m.WarpsPerSM), int64(passes)),
		wins: (pages + winPages - 1) / winPages,
	}
	w.total = w.rot.perRound * w.q * w.wins
	if w.total == 0 {
		return nil
	}
	return w
}

func (w *falseWalker) remaining() int64 { return w.total - w.pos }

func (w *falseWalker) next() uint64 {
	winPages := int64(w.layout.FalseWindowPages)
	if winPages <= 0 || winPages > w.pages {
		winPages = w.pages
	}
	page := (w.win*winPages + w.rot.item()) % w.pages
	lpp := int64(w.layout.Geom.LinesPerPage())
	line := int64(w.layout.FalseBase) + page*lpp + w.chip*w.q + w.inPage
	w.inPage++
	if w.inPage >= w.q {
		w.inPage = 0
		if w.rot.next() {
			w.win++
		}
	}
	w.pos++
	return uint64(line)
}

// trueWalker walks the truly-shared region in globally synchronized windows.
// Window t covers lines [t*W, (t+1)*W) of the region (mod region size).
//
// Within a window, the chip's warps are organized along two sharing axes
// that real GPU kernels exhibit:
//
//   - SharersTrue warps — from different SMs of the chip — walk the same
//     window slice concurrently (SMs reading the same tile at the same
//     time). This short-range sharing is capacity-insensitive: under an
//     SM-side LLC the first sharer fetches and the rest hit locally, while
//     under a memory-side LLC the extra accesses hit at the line's home
//     chip, across the ring. It is also immediately visible to the CRD
//     during SAC's profiling window.
//   - ReuseTrue rotated passes re-walk the window long-range (slices rotate
//     across warps between passes). This reuse is capacity-sensitive: it
//     only hits if the (possibly replicated) window survived in the LLC —
//     the axis on which the organizations' capacities differ.
//
// All chips share the schedule, so every line is accessed by all chips
// within the same period — truly shared.
type trueWalker struct {
	layout Layout
	slots  int64 // concurrent-sharer groups (warpsPerChip / SharersTrue)
	slot0  int64 // this warp's group
	rot    int64 // slot stride between passes (jumps to another SM's group)
	reuse  int64 // long-range passes per window

	win  int64
	wins int64
	pass int64
	off  int64
	lo   int64
	hi   int64

	perWin int64
	total  int64
	pos    int64
}

func newTrueWalker(l Layout, m Machine, warpInChip int, reuse, sharers int) *trueWalker {
	if l.TrueLines <= 0 {
		return nil
	}
	if reuse < 1 {
		reuse = 1
	}
	if sharers < 1 {
		sharers = 1
	}
	wlines := int64(l.WindowLines)
	wins := (int64(l.TrueLines) + wlines - 1) / wlines
	slots := int64(m.WarpsPerChip()) / int64(sharers)
	if slots < 1 {
		slots = 1
	}
	rot := int64(m.WarpsPerSM) % slots
	if rot == 0 {
		rot = 1
	}
	t := &trueWalker{
		layout: l,
		slots:  slots,
		slot0:  int64(warpInChip) % slots,
		rot:    rot,
		reuse:  int64(reuse),
		wins:   wins,
	}
	for p := int64(0); p < t.reuse; p++ {
		lo, hi := splitRange(wlines, t.slots, t.slot(p))
		t.perWin += hi - lo
	}
	t.total = t.perWin * wins
	if t.total == 0 {
		return nil
	}
	t.lo, t.hi = splitRange(wlines, t.slots, t.slot(0))
	return t
}

// slot returns the window slice this warp's group covers in pass p; slices
// rotate between passes by a warps-per-SM stride so long-range revisits
// come from other SMs (same-SM revisits would be absorbed by the L1).
func (w *trueWalker) slot(pass int64) int64 { return (w.slot0 + pass*w.rot) % w.slots }

func (w *trueWalker) remaining() int64 { return w.total - w.pos }

func (w *trueWalker) next() uint64 {
	for w.hi <= w.lo {
		w.advance()
	}
	line := (w.win*int64(w.layout.WindowLines) + w.lo + w.off) % int64(w.layout.TrueLines)
	w.off++
	if w.off >= w.hi-w.lo {
		w.off = 0
		w.advance()
	}
	w.pos++
	return w.layout.TrueBase + uint64(line)
}

func (w *trueWalker) advance() {
	w.pass++
	if w.pass >= w.reuse {
		w.pass = 0
		w.win++
	}
	w.lo, w.hi = splitRange(int64(w.layout.WindowLines), w.slots, w.slot(w.pass))
}

// splitRange divides [0,n) into parts near-equal slices and returns slice i.
func splitRange(n, parts, i int64) (lo, hi int64) {
	lo = n * i / parts
	hi = n * (i + 1) / parts
	return lo, hi
}

// NewStream builds the access stream of warp (chip, sm, warp) for kernel ki
// of spec s on machine m.
func (s Spec) NewStream(m Machine, ki, chip, sm, warp int) *Stream {
	k := s.KernelAt(ki)
	l := s.LayoutFor(ki, m)
	warpInChip := sm*m.WarpsPerSM + warp

	st := &Stream{
		salt:  addr.Mix64(uint64(chip)<<40 ^ uint64(sm)<<20 ^ uint64(warp)<<4 ^ uint64(ki)),
		write: uint64(k.WriteFrac * (1 << 16)),
		gap:   max(k.ComputeGap, 0),
	}

	// Private walk: chip-block (page aligned), then warp slice.
	if l.PrivLines > 0 {
		chipLines := int64(l.PrivLines) / int64(m.Chips)
		lo, hi := splitRange(chipLines, int64(m.WarpsPerChip()), int64(warpInChip))
		if hi > lo {
			base := l.PrivBase + uint64(int64(chip)*chipLines+lo)
			if bw := newBlockWalker(base, int(hi-lo), k.BlockLines, k.ReusePriv, k.PassesPriv); bw != nil {
				st.addWalk(bw)
			}
		}
	}
	if fw := newFalseWalker(l, m, chip, warpInChip, k.ReuseFalse, k.PassesFalse); fw != nil {
		st.addWalk(fw)
	}
	if tw := newTrueWalker(l, m, warpInChip, k.ReuseTrue, k.SharersTrue); tw != nil {
		st.addWalk(tw)
	}
	for _, w := range st.walks {
		st.total += w.remaining()
	}
	for i, w := range st.walks {
		st.share[i] = w.remaining()
	}
	return st
}

// SourceName implements the simulator's workload-source interface.
func (s Spec) SourceName() string { return s.Name }

// KernelName returns the name of kernel invocation i.
func (s Spec) KernelName(i int) string { return s.KernelAt(i).Name }

// Stream returns warp (chip, sm, warp)'s access stream for kernel ki as an
// AccessStream (the interface the simulator consumes).
func (s Spec) Stream(m Machine, ki, chip, sm, warp int) AccessStream {
	return s.NewStream(m, ki, chip, sm, warp)
}

func (st *Stream) addWalk(w walker) {
	st.walks = append(st.walks, w)
	st.credit = append(st.credit, 0)
	st.share = append(st.share, 0)
}
