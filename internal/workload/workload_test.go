package workload

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/memsys"
)

var testMachine = Machine{
	Chips:      4,
	SMsPerChip: 4,
	WarpsPerSM: 4,
	Geom:       memsys.Geometry{LineBytes: 128, PageBytes: 4096, Sectors: 4},
	Scale:      64,
}

func tinySpec() Spec {
	return Spec{
		Name: "tiny", CTAs: 64, Repeats: 1,
		Kernels: []Kernel{{
			Name:      "k0",
			PrivateMB: 16, FalseMB: 8, TrueMB: 8,
			BlockLines: 8, ReusePriv: 2, ReuseFalse: 2, ReuseTrue: 2,
			PassesPriv: 1, PassesFalse: 1,
			TrueWindowMB: 2, WriteFrac: 0.2, ComputeGap: 2,
		}},
	}
}

func TestMachineValidate(t *testing.T) {
	if err := testMachine.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	bad := testMachine
	bad.Scale = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero scale accepted")
	}
	bad = testMachine
	bad.Chips = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero chips accepted")
	}
	if testMachine.WarpsPerChip() != 16 || testMachine.TotalWarps() != 64 {
		t.Fatal("warp counts wrong")
	}
}

func TestLayoutRegionsDisjoint(t *testing.T) {
	s := tinySpec()
	l := s.LayoutFor(0, testMachine)
	if l.PrivLines <= 0 || l.FalseLines <= 0 || l.TrueLines <= 0 {
		t.Fatalf("degenerate layout %+v", l)
	}
	if l.PrivBase+uint64(l.PrivLines) > l.FalseBase {
		t.Fatal("private overlaps false region")
	}
	if l.FalseBase+uint64(l.FalseLines) > l.TrueBase {
		t.Fatal("false overlaps true region")
	}
	if l.WindowLines <= 0 || l.WindowLines > l.TrueLines {
		t.Fatalf("bad window %d for %d true lines", l.WindowLines, l.TrueLines)
	}
	lpp := testMachine.Geom.LinesPerPage()
	if l.PrivLines%(lpp*testMachine.Chips) != 0 {
		t.Fatal("private region not chip-page aligned")
	}
	if l.FalseLines%lpp != 0 {
		t.Fatal("false region not page aligned")
	}
}

func TestStreamDeterministic(t *testing.T) {
	s := tinySpec()
	a := s.NewStream(testMachine, 0, 1, 2, 3)
	b := s.NewStream(testMachine, 0, 1, 2, 3)
	if a.Len() == 0 || a.Len() != b.Len() {
		t.Fatalf("lengths %d vs %d", a.Len(), b.Len())
	}
	for {
		x, okA := a.Next()
		y, okB := b.Next()
		if okA != okB {
			t.Fatal("streams diverge in length")
		}
		if !okA {
			break
		}
		if x != y {
			t.Fatalf("streams diverge: %+v vs %+v", x, y)
		}
	}
}

func TestStreamEndsAtLen(t *testing.T) {
	s := tinySpec()
	st := s.NewStream(testMachine, 0, 0, 0, 0)
	n := int64(0)
	for {
		_, ok := st.Next()
		if !ok {
			break
		}
		n++
		if n > st.Len()+1 {
			t.Fatal("stream exceeds declared length")
		}
	}
	if n != st.Len() {
		t.Fatalf("emitted %d, declared %d", n, st.Len())
	}
}

// drive runs every warp's stream through a page table, reproducing what the
// simulator's first-touch placement sees. Warps are interleaved round-robin
// to mimic concurrent execution.
func drive(t *testing.T, s Spec, m Machine, ki int) *addr.PageTable {
	t.Helper()
	pt := addr.NewPageTable(m.Geom, m.Chips)
	type ws struct {
		chip int
		st   *Stream
	}
	var all []ws
	for c := 0; c < m.Chips; c++ {
		for sm := 0; sm < m.SMsPerChip; sm++ {
			for w := 0; w < m.WarpsPerSM; w++ {
				all = append(all, ws{c, s.NewStream(m, ki, c, sm, w)})
			}
		}
	}
	live := len(all)
	for live > 0 {
		live = 0
		for _, w := range all {
			a, ok := w.st.Next()
			if !ok {
				continue
			}
			live++
			pt.Touch(a.Line, w.chip)
		}
	}
	return pt
}

func TestSharingStructure(t *testing.T) {
	s := tinySpec()
	m := testMachine
	pt := drive(t, s, m, 0)
	l := s.LayoutFor(0, m)

	// Private lines must be non-shared.
	for i := 0; i < l.PrivLines; i += 7 {
		if cl := pt.Classify(l.PrivBase + uint64(i)); cl != addr.NonShared {
			t.Fatalf("private line %d classified %v", i, cl)
		}
	}
	// Touched false lines must be falsely shared.
	falseSeen := 0
	for i := 0; i < l.FalseLines; i++ {
		cl := pt.Classify(l.FalseBase + uint64(i))
		if cl == addr.TrueShared {
			t.Fatalf("false-region line %d classified true-shared", i)
		}
		if cl == addr.FalseShared {
			falseSeen++
		}
	}
	if falseSeen < l.FalseLines*8/10 {
		t.Fatalf("only %d/%d false lines falsely shared", falseSeen, l.FalseLines)
	}
	// Touched true lines must be truly shared.
	trueSeen := 0
	for i := 0; i < l.TrueLines; i++ {
		if pt.Classify(l.TrueBase+uint64(i)) == addr.TrueShared {
			trueSeen++
		}
	}
	if trueSeen < l.TrueLines*8/10 {
		t.Fatalf("only %d/%d true lines truly shared", trueSeen, l.TrueLines)
	}
}

func TestFootprintMatchesSpec(t *testing.T) {
	s := tinySpec()
	pt := drive(t, s, testMachine, 0)
	total, ts, fs := pt.FootprintBytes()
	k := s.Kernels[0]
	mb := func(b int64) float64 { return float64(b) / (1 << 20) * float64(testMachine.Scale) }
	wantTotal := k.PrivateMB + k.FalseMB + k.TrueMB
	if got := mb(total); got < wantTotal*0.8 || got > wantTotal*1.25 {
		t.Errorf("footprint %.1f MB, want ~%.1f", got, wantTotal)
	}
	if got := mb(ts); got < k.TrueMB*0.8 || got > k.TrueMB*1.25 {
		t.Errorf("true-shared %.1f MB, want ~%.1f", got, k.TrueMB)
	}
	if got := mb(fs); got < k.FalseMB*0.8 || got > k.FalseMB*1.25 {
		t.Errorf("false-shared %.1f MB, want ~%.1f", got, k.FalseMB)
	}
}

func TestWriteFraction(t *testing.T) {
	s := tinySpec()
	st := s.NewStream(testMachine, 0, 0, 0, 0)
	writes, total := 0, 0
	for {
		a, ok := st.Next()
		if !ok {
			break
		}
		total++
		if a.Kind == memsys.Write {
			writes++
		}
	}
	frac := float64(writes) / float64(total)
	if frac < 0.1 || frac > 0.3 {
		t.Fatalf("write fraction %.3f, want ~0.2", frac)
	}
}

func TestCatalogShape(t *testing.T) {
	cat := Catalog()
	if len(cat) != 16 {
		t.Fatalf("catalog has %d entries, want 16", len(cat))
	}
	t4 := Table4()
	sp := 0
	for i, s := range cat {
		if s.Name != t4[i].Name {
			t.Errorf("catalog[%d] = %s, Table4 = %s", i, s.Name, t4[i].Name)
		}
		if s.CTAs != t4[i].CTAs {
			t.Errorf("%s CTAs %d, want %d", s.Name, s.CTAs, t4[i].CTAs)
		}
		if s.SMSide {
			sp++
		}
		if len(s.Kernels) == 0 || s.Repeats < 1 {
			t.Errorf("%s has no kernels or repeats", s.Name)
		}
		// Region sizes must reproduce Table 4: max across kernels.
		var maxP, maxF, maxT float64
		for _, k := range s.Kernels {
			maxP = max(maxP, k.PrivateMB)
			maxF = max(maxF, k.FalseMB)
			maxT = max(maxT, k.TrueMB)
		}
		if tot := maxP + maxF + maxT; tot < t4[i].FootprintMB*0.9 || tot > t4[i].FootprintMB*1.1 {
			t.Errorf("%s footprint %.1f, Table 4 says %.1f", s.Name, tot, t4[i].FootprintMB)
		}
		if maxT < t4[i].TrueMB*0.9 || maxT > t4[i].TrueMB*1.1 {
			t.Errorf("%s true %.1f, Table 4 says %.1f", s.Name, maxT, t4[i].TrueMB)
		}
		if maxF < t4[i].FalseMB*0.9 || maxF > t4[i].FalseMB*1.1 {
			t.Errorf("%s false %.1f, Table 4 says %.1f", s.Name, maxF, t4[i].FalseMB)
		}
	}
	if sp != 8 {
		t.Fatalf("%d SP benchmarks, want 8", sp)
	}
}

func TestByNameAndNames(t *testing.T) {
	s, err := ByName("GEMM")
	if err != nil || s.Name != "GEMM" || s.SMSide {
		t.Fatalf("ByName(GEMM) = %+v, %v", s, err)
	}
	if _, err := ByName("NOPE"); err == nil {
		t.Fatal("unknown name accepted")
	}
	if n := Names(); len(n) != 16 || n[0] != "RN" || n[15] != "NN" {
		t.Fatalf("Names = %v", n)
	}
}

func TestScaleInput(t *testing.T) {
	s, _ := ByName("RN")
	half := s.ScaleInput(0.5)
	if half.Kernels[0].TrueMB != s.Kernels[0].TrueMB/2 {
		t.Fatal("TrueMB not scaled")
	}
	if half.Kernels[0].TrueWindowMB != s.Kernels[0].TrueWindowMB/2 {
		t.Fatal("window not scaled")
	}
	if half.Name == s.Name {
		t.Fatal("scaled spec should be renamed")
	}
	same := s.ScaleInput(1)
	if same.Name != s.Name {
		t.Fatal("unit scale should keep the name")
	}
}

func TestKernelSequence(t *testing.T) {
	bfs, _ := ByName("BFS")
	if bfs.KernelCount() != 4 {
		t.Fatalf("BFS kernel count %d, want 4 (2 kernels x 2 repeats)", bfs.KernelCount())
	}
	if bfs.KernelAt(0).Name != "bfs-k1" || bfs.KernelAt(1).Name != "bfs-k2" ||
		bfs.KernelAt(2).Name != "bfs-k1" {
		t.Fatal("kernel alternation wrong")
	}
}

func TestTrueWindowSynchronizedAcrossChips(t *testing.T) {
	// Early accesses to the true region from different chips must overlap in
	// the same window — that is what creates replication-friendly sharing.
	s := tinySpec()
	m := testMachine
	l := s.LayoutFor(0, m)
	inWindow := func(line uint64) bool {
		return line >= l.TrueBase && line < l.TrueBase+uint64(l.WindowLines)
	}
	for chip := 0; chip < m.Chips; chip++ {
		st := s.NewStream(m, 0, chip, 0, 0)
		seen := 0
		for i := 0; i < 200; i++ {
			a, ok := st.Next()
			if !ok {
				break
			}
			if inWindow(a.Line) {
				seen++
			}
		}
		if seen == 0 {
			t.Fatalf("chip %d never touched window 0 early", chip)
		}
	}
}

func TestBlockWalkerCoverage(t *testing.T) {
	w := newBlockWalker(100, 10, 4, 2, 1)
	seen := map[uint64]int{}
	for w.remaining() > 0 {
		seen[w.next()]++
	}
	for l := uint64(100); l < 110; l++ {
		if seen[l] == 0 {
			t.Fatalf("line %d never visited: %v", l, seen)
		}
	}
	if len(seen) != 10 {
		t.Fatalf("visited %d distinct lines, want 10", len(seen))
	}
}

func TestStreamGapJitterNonNegative(t *testing.T) {
	s := tinySpec()
	st := s.NewStream(testMachine, 0, 0, 1, 1)
	for i := 0; i < 1000; i++ {
		a, ok := st.Next()
		if !ok {
			break
		}
		if a.Gap < 0 {
			t.Fatalf("negative gap %d", a.Gap)
		}
	}
}

func TestRotorRotatesAcrossSMs(t *testing.T) {
	// 16 warps (4 SMs x 4 warps), rot = warpsPerSM = 4: consecutive passes of
	// the same slot must belong to warps of different SMs.
	r := newRotor(64, 16, 3, 4, 4)
	slots := map[int64]bool{}
	for p := int64(0); p < 4; p++ {
		slot := r.slot(p)
		if slots[slot] {
			t.Fatalf("slot %d repeated within the rotation", slot)
		}
		slots[slot] = true
		// Slot index mod warpsPerSM identifies... the rotated warp; the SM of
		// the warp owning slot s in pass p differs from pass p-1's.
		if p > 0 && slot/4 == r.slot(p-1)/4 {
			t.Fatalf("passes %d and %d land in the same SM", p-1, p)
		}
	}
}

func TestRotorCoverage(t *testing.T) {
	// Collectively, all warps cover every item in every pass.
	const n, warps, passes = 50, 8, 3
	counts := make([]int, n)
	for w := int64(0); w < warps; w++ {
		r := newRotor(n, warps, w, 2, passes)
		for i := r.perRound; i > 0; i-- {
			counts[r.item()]++
			r.next()
		}
	}
	for i, c := range counts {
		if c != passes {
			t.Fatalf("item %d visited %d times, want %d", i, c, passes)
		}
	}
}

func TestRotorWrapSignal(t *testing.T) {
	r := newRotor(8, 2, 0, 1, 2)
	wraps := 0
	for i := int64(0); i < r.perRound*3; i++ {
		if r.next() {
			wraps++
		}
	}
	if wraps != 3 {
		t.Fatalf("wraps = %d, want 3 (one per full round)", wraps)
	}
}

func TestFalseWindowLimitsConcurrentPages(t *testing.T) {
	// With a false window of 1 page-window, early accesses must stay within
	// the first window's pages.
	s := tinySpec()
	s.Kernels[0].FalseWindowMB = 0.5 // at scale 64: tiny window
	m := testMachine
	l := s.LayoutFor(0, m)
	if l.FalseWindowPages <= 0 || l.FalseWindowPages >= l.FalseLines/m.Geom.LinesPerPage() {
		t.Fatalf("window pages = %d of %d total", l.FalseWindowPages, l.FalseLines/m.Geom.LinesPerPage())
	}
	lpp := uint64(m.Geom.LinesPerPage())
	limit := l.FalseBase + uint64(l.FalseWindowPages)*lpp
	st := s.NewStream(m, 0, 1, 0, 0)
	seen := 0
	for i := 0; i < 64 && seen < 8; i++ {
		a, ok := st.Next()
		if !ok {
			break
		}
		if a.Line >= l.FalseBase && a.Line < l.FalseBase+uint64(l.FalseLines) {
			seen++
			if a.Line >= limit {
				t.Fatalf("early false access outside window 0: line %d >= %d", a.Line, limit)
			}
		}
	}
}

func TestWalkersNilOnEmptyRegions(t *testing.T) {
	l := Layout{Geom: testMachine.Geom}
	if w := newFalseWalker(l, testMachine, 0, 0, 1, 1); w != nil {
		t.Fatal("empty false region produced a walker")
	}
	if w := newTrueWalker(l, testMachine, 0, 1, 1); w != nil {
		t.Fatal("empty true region produced a walker")
	}
	if w := newBlockWalker(0, 0, 4, 1, 1); w != nil {
		t.Fatal("empty block region produced a walker")
	}
}

func TestStreamsCoverAllRegionsCollectively(t *testing.T) {
	// Every line of every region is touched by the full machine.
	s := tinySpec()
	m := testMachine
	pt := drive(t, s, m, 0)
	l := s.LayoutFor(0, m)
	total, _, _ := pt.FootprintBytes()
	wantLines := int64(l.PrivLines + l.FalseLines + l.TrueLines)
	gotLines := total / int64(m.Geom.LineBytes)
	if gotLines < wantLines*95/100 {
		t.Fatalf("covered %d of %d lines", gotLines, wantLines)
	}
}
