package xchip

import "testing"

func TestLinkOutageAndHeal(t *testing.T) {
	r := New(Config{Chips: 4, LinkBW: 96, HopLatency: 2})
	s := newSink()
	r.SetLinkScale(0, CW, 0)
	if got := r.LinkScale(0, CW); got != 0 {
		t.Fatalf("LinkScale = %v, want 0", got)
	}
	r.Inject(ringMsg(0, 1, 7))
	run(r, s, 50)
	if len(s.arrived[1]) != 0 {
		t.Fatal("message crossed a dead link")
	}
	if r.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1 (queued at the dead link)", r.Pending())
	}
	// Heal and the queued message drains.
	r.SetLinkScale(0, CW, 1)
	runFrom(r, s, 50, 10)
	if len(s.arrived[1]) != 1 {
		t.Fatalf("chip 1 got %d messages after heal, want 1", len(s.arrived[1]))
	}
	if r.Pending() != 0 {
		t.Fatalf("Pending = %d after heal", r.Pending())
	}
}

func TestLinkOutageLeavesOtherDirectionAlive(t *testing.T) {
	r := New(Config{Chips: 4, LinkBW: 96, HopLatency: 2})
	s := newSink()
	r.SetLinkScale(0, CW, 0)
	r.Inject(ringMsg(0, 3, 7)) // 0→3 routes CCW, unaffected
	run(r, s, 10)
	if len(s.arrived[3]) != 1 {
		t.Fatal("CCW traffic blocked by a CW outage")
	}
}

func TestLinkThrottleHalvesThroughput(t *testing.T) {
	// 32 B messages over a 32 B/cycle link: healthy ≈ 1 msg/cycle; at scale
	// 0.5 ≈ 0.5 msg/cycle. 4 chips so 0→1 routes strictly CW (on a 2-ring
	// the directions are equidistant and traffic would split).
	count := func(scale float64) int {
		r := New(Config{Chips: 4, LinkBW: 32, HopLatency: 1})
		r.SetLinkScale(0, CW, scale)
		s := newSink()
		for i := 0; i < 200; i++ {
			r.Inject(ringMsg(0, 1, uint64(i)))
		}
		run(r, s, 101)
		return len(s.arrived[1])
	}
	full, half := count(1), count(0.5)
	if full < 95 || half < 45 || half > 55 {
		t.Fatalf("throughput full=%d half=%d; want ~100 and ~50", full, half)
	}
}

func TestSetLinkBWPreservesScale(t *testing.T) {
	r := New(Config{Chips: 2, LinkBW: 32, HopLatency: 1})
	r.SetLinkScale(0, CW, 0)
	r.SetLinkBW(64) // sensitivity sweep reconfigure mid-outage
	if r.bkt[0][CW].Rate() != 0 {
		t.Fatalf("dead link revived by SetLinkBW: rate = %v", r.bkt[0][CW].Rate())
	}
	if r.bkt[1][CW].Rate() != 64 {
		t.Fatalf("healthy link rate = %v, want 64", r.bkt[1][CW].Rate())
	}
}
