package xchip

import (
	"reflect"
	"testing"
)

// A round of per-chip staged injections flushed in chip-index order must
// load the ring exactly as the serial loop injecting directly in that same
// order would: same accept/refuse decisions, same egress contents, same
// deliveries.
func TestLaneStagingMatchesDirectInjection(t *testing.T) {
	cfg := Config{Chips: 4, LinkBW: 96, HopLatency: 2, QueueBound: 4}
	direct := New(cfg)
	staged := New(cfg)

	var msgs []Message
	for i := 0; i < 40; i++ {
		src := i % 4
		dst := (src + 1 + i%3) % 4
		msgs = append(msgs, ringMsg(src, dst, uint64(i)))
	}
	accepted := 0
	for c := 0; c < 4; c++ {
		for _, m := range msgs {
			if m.Src != c {
				continue
			}
			if direct.CanInject(m.Src, m.Dst, m.Req.Line) {
				direct.Inject(m)
				accepted++
			}
		}
	}
	stagedAccepted := 0
	for c := 0; c < 4; c++ {
		l := staged.Lane(c)
		for _, m := range msgs {
			if m.Src != c {
				continue
			}
			if l.CanInject(m.Dst, m.Req.Line) {
				l.Inject(m)
				stagedAccepted++
			}
		}
	}
	if stagedAccepted != accepted {
		t.Fatalf("lanes accepted %d messages, direct injection accepted %d", stagedAccepted, accepted)
	}
	for c := 0; c < 4; c++ {
		staged.Lane(c).Flush()
	}
	if direct.Pending() != staged.Pending() {
		t.Fatalf("pending after load: direct %d, staged %d", direct.Pending(), staged.Pending())
	}

	sd, ss := newSink(), newSink()
	run(direct, sd, 200)
	run(staged, ss, 200)
	for c := 0; c < 4; c++ {
		if !reflect.DeepEqual(sd.arrived[c], ss.arrived[c]) {
			t.Fatalf("chip %d deliveries diverge:\ndirect %+v\nstaged %+v", c, sd.arrived[c], ss.arrived[c])
		}
	}
}

// CanInject on a lane must count messages staged this phase against the
// queue bound, or a chip could overfill its egress queue within one cycle.
func TestLaneCanInjectCountsStaged(t *testing.T) {
	r := New(Config{Chips: 4, LinkBW: 96, HopLatency: 1, QueueBound: 2})
	l := r.Lane(0)
	for i := 0; i < 2; i++ {
		if !l.CanInject(1, 0) {
			t.Fatalf("injection %d refused below the bound", i)
		}
		l.Inject(ringMsg(0, 1, 0))
	}
	if l.CanInject(1, 0) {
		t.Fatal("staged messages not counted against the queue bound")
	}
	if l.Staged() != 2 {
		t.Fatalf("Staged = %d, want 2", l.Staged())
	}
	l.Flush()
	if l.Staged() != 0 {
		t.Fatalf("Staged = %d after Flush, want 0", l.Staged())
	}
	// The flushed messages now occupy the real egress queue.
	if r.CanInject(0, 1, 0) {
		t.Fatal("flushed messages missing from the egress queue")
	}
}

func TestLaneRejectsForeignSource(t *testing.T) {
	r := New(Config{Chips: 4, LinkBW: 96, HopLatency: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("lane accepted a message sourced by another chip")
		}
	}()
	r.Lane(0).Inject(ringMsg(1, 2, 0))
}
