package xchip

import (
	"math/rand"
	"testing"

	"repro/internal/memsys"
)

// TestNextEventNeverLate: the ring's NextEvent(now) is a lower bound on its
// first observable state change (a launch, hop, delivery, or refused
// delivery — everything StateSig folds in), and -1 exactly when nothing is
// queued or on the wire. Probes freeze injection and brute-force step Tick.
func TestNextEventNeverLate(t *testing.T) {
	r := New(Config{Chips: 4, LinkBW: 64, HopLatency: 7})
	rng := rand.New(rand.NewSource(31))
	const horizon = 100 // a few hop latencies
	s := newSink()
	snap := func() [2]int64 { return [2]int64{int64(r.Pending()), r.StateSig()} }

	now := int64(0)
	for probe := 0; probe < 200; probe++ {
		s.refuse = rng.Intn(5) == 0
		for c := 1 + rng.Intn(15); c > 0; c-- {
			now++
			for i := rng.Intn(3); i > 0; i-- {
				src := rng.Intn(4)
				dst := rng.Intn(4)
				if dst == src {
					dst = (src + 1) % 4
				}
				line := rng.Uint64() % 256
				if r.CanInject(src, dst, line) {
					r.Inject(Message{Req: &memsys.Request{Line: line}, Src: src, Dst: dst, Bytes: 32})
				}
			}
			r.Tick(now, s)
		}

		ne := r.NextEvent(now)
		if r.Pending() == 0 && ne != -1 {
			t.Fatalf("probe %d: idle ring returned NextEvent %d, want -1", probe, ne)
		}
		if ne != -1 && ne <= now {
			t.Fatalf("probe %d: NextEvent %d not in the future of %d", probe, ne, now)
		}
		before := snap()
		change := int64(-1)
		for tt := now + 1; tt <= now+horizon; tt++ {
			r.Tick(tt, s)
			if snap() != before {
				change = tt
				break
			}
		}
		switch {
		case change >= 0:
			if ne == -1 || ne > change {
				t.Fatalf("probe %d: NextEvent(%d) = %d but state changed at %d", probe, now, ne, change)
			}
			now = change
		default:
			if ne != -1 && ne <= now+horizon {
				t.Fatalf("probe %d: NextEvent(%d) = %d promised progress but nothing changed in %d cycles",
					probe, now, ne, horizon)
			}
			now += horizon
		}
	}
}
