// Package xchip models the inter-chip interconnect of the multi-chip GPU:
// a bidirectional ring (the paper's baseline: 4 chips, 3 NVLink-style links
// per neighbour pair, 96 GB/s per direction per pair at full scale).
// Messages hop neighbour to neighbour; each hop is gated by the directional
// link's bandwidth and charged a fixed link latency. Non-adjacent chips
// (distance 2 on a 4-ring) route via the shorter side, with ties broken by a
// deterministic hash of the line address so that opposite-chip traffic uses
// both directions evenly.
package xchip

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/bwsim"
	"repro/internal/memsys"
)

// Direction of travel around the ring.
type Direction uint8

const (
	// CW moves from chip i to chip (i+1) mod N.
	CW Direction = iota
	// CCW moves from chip i to chip (i-1) mod N.
	CCW
)

// Message is a unit in flight on the ring.
type Message struct {
	Req   *memsys.Request
	Src   int
	Dst   int
	Bytes int
	dir   Direction
}

// Sink receives messages that arrived at their destination chip.
type Sink interface {
	// CanAccept lets the destination chip back-pressure arrivals.
	CanAccept(chip int, m Message) bool
	// Accept delivers an arrived message.
	Accept(chip int, m Message)
}

// Config sizes the ring.
type Config struct {
	Chips      int
	LinkBW     float64 // bytes/cycle per neighbour pair per direction
	HopLatency int64   // cycles per hop (serialization + wire)
	QueueBound int     // per-link egress queue back-pressure threshold
}

// Ring is the inter-chip network.
type Ring struct {
	cfg   Config
	lanes []Lane
	// egress[chip][dir]: messages waiting to enter the link leaving chip in dir.
	egress [][2]*bwsim.Queue[Message]
	bkt    [][2]*bwsim.TokenBucket
	// scale[chip][dir]: residual health of the link leaving chip in dir
	// (1 = healthy, 0 = dead); fault injection degrades links mid-run.
	scale [][2]float64
	// inFlight[chip][dir]: messages on the wire leaving chip in dir.
	inFlight [][2]*bwsim.DelayLine[Message]

	// pendingBy[chip]: messages held in chip's egress queues or on the wire
	// leaving chip. Partitioned by holding chip so that the fused-epoch
	// launch path (FusedLaunch, one goroutine per chip) mutates only its own
	// counter; Pending sums the partition.
	pendingBy []int32
	// landDueBy[chip]: earliest due cycle over the two in-flight delay lines
	// leaving chip, -1 when both are empty. Partitioned by launching chip
	// for the same reason as pendingBy; it lets Tick skip the landing scan
	// of chips with nothing due and NextLanding read 1 word per chip instead
	// of peeking every delay line.
	landDueBy []int64
	lastRef   int64 // cycle of the last bucket refill

	// Stats. Counters mutated on the per-chip launch path are partitioned by
	// chip (msgsBy, injectsBy, linkBytes); the landing-phase counters stay
	// scalar because landings only ever run serially in Tick.
	Arrivals  int64
	msgsBy    []int64 // link traversals launched by each chip
	injectsBy []int64 // Inject calls per source chip (monotone, for StateSig)
	hopped    int64   // intermediate-hop re-queues (monotone, for StateSig)
	refused   int64   // refused deliveries re-inserted (monotone, for StateSig)

	// advanced[chip] marks chips whose buckets already caught up this fused
	// cycle; FinishFused settles the rest and clears the marks.
	advanced []bool

	// linkBytes[chip][dir]: bytes that entered the link leaving chip in dir
	// (the per-link breakdown of BytesMoved; utilization metrics window it).
	linkBytes [][2]int64
}

// New returns an idle ring.
func New(cfg Config) *Ring {
	if cfg.Chips < 2 || cfg.LinkBW <= 0 {
		panic(fmt.Sprintf("xchip: invalid config %+v", cfg))
	}
	if cfg.HopLatency < 1 {
		cfg.HopLatency = 1
	}
	r := &Ring{
		cfg:       cfg,
		egress:    make([][2]*bwsim.Queue[Message], cfg.Chips),
		bkt:       make([][2]*bwsim.TokenBucket, cfg.Chips),
		scale:     make([][2]float64, cfg.Chips),
		inFlight:  make([][2]*bwsim.DelayLine[Message], cfg.Chips),
		pendingBy: make([]int32, cfg.Chips),
		landDueBy: make([]int64, cfg.Chips),
		msgsBy:    make([]int64, cfg.Chips),
		injectsBy: make([]int64, cfg.Chips),
		advanced:  make([]bool, cfg.Chips),
		linkBytes: make([][2]int64, cfg.Chips),
	}
	for c := 0; c < cfg.Chips; c++ {
		r.landDueBy[c] = -1
		for d := 0; d < 2; d++ {
			r.egress[c][d] = bwsim.NewQueue[Message](cfg.QueueBound)
			r.bkt[c][d] = bwsim.NewBucket(cfg.LinkBW)
			r.scale[c][d] = 1
			r.inFlight[c][d] = bwsim.NewDelayLine[Message]()
		}
	}
	r.lanes = make([]Lane, cfg.Chips)
	for c := range r.lanes {
		r.lanes[c] = Lane{r: r, chip: c}
	}
	return r
}

// Lane is chip's staged view of the ring, for phase-parallel cycle loops
// that tick chips concurrently. A Lane's Inject appends to a private
// per-direction buffer instead of touching shared ring state, and its
// CanInject answers exactly what Ring.CanInject would answer had the staged
// messages already been pushed — so back-pressure decisions match a serial
// execution. Flush replays the buffers through Ring.Inject in staging
// order; since each egress queue is per (source chip, direction) and a lane
// only ever stages messages sourced at its own chip, flushing lanes in chip
// index order reproduces the serial loop's egress-queue contents exactly.
//
// Each goroutine must use only its own chip's Lane, and Flush must only be
// called from the coordinating goroutine between parallel phases.
func (r *Ring) Lane(chip int) *Lane { return &r.lanes[chip] }

// Lane stages ring injections for one chip. See Ring.Lane.
type Lane struct {
	r      *Ring
	chip   int
	staged [2][]Message
}

// CanInject reports whether the lane's chip has egress queue space toward
// dst, counting messages already staged this phase as occupying slots.
func (l *Lane) CanInject(dst int, line uint64) bool {
	d := l.r.route(l.chip, dst, line)
	b := l.r.cfg.QueueBound
	return b <= 0 || l.r.egress[l.chip][d].Len()+len(l.staged[d]) < b
}

// Inject stages a message sourced at the lane's chip.
func (l *Lane) Inject(m Message) {
	if m.Src != l.chip {
		panic(fmt.Sprintf("xchip: lane %d injection from chip %d", l.chip, m.Src))
	}
	d := l.r.route(m.Src, m.Dst, m.Req.Line)
	l.staged[d] = append(l.staged[d], m)
}

// Staged returns the number of messages waiting in the lane.
func (l *Lane) Staged() int { return len(l.staged[0]) + len(l.staged[1]) }

// Flush replays the staged messages into the ring in staging order and
// empties the lane (buffers are retained for reuse).
func (l *Lane) Flush() {
	for d := range l.staged {
		for i := range l.staged[d] {
			l.r.Inject(l.staged[d][i])
			l.staged[d][i] = Message{}
		}
		l.staged[d] = l.staged[d][:0]
	}
}

// Cfg returns the ring's configuration.
func (r *Ring) Cfg() Config { return r.cfg }

// SetLinkBW reconfigures the per-direction link bandwidth (sensitivity
// sweeps). Per-link degradation scales are preserved.
func (r *Ring) SetLinkBW(bw float64) {
	r.cfg.LinkBW = bw
	for c := range r.bkt {
		for d := 0; d < 2; d++ {
			r.bkt[c][d].SetRate(bw * r.scale[c][d])
		}
	}
}

// SetLinkScale degrades (or heals) the directional link leaving chip in
// direction dir to scale of its configured bandwidth. Scale 0 is a full
// outage: queued messages stay queued and back-pressure propagates to the
// injecting chips. In-flight hops land normally (the wire is not cut).
func (r *Ring) SetLinkScale(chip int, dir Direction, scale float64) {
	if chip < 0 || chip >= r.cfg.Chips || dir > CCW {
		panic(fmt.Sprintf("xchip: no link %d/%v", chip, dir))
	}
	if scale < 0 {
		scale = 0
	} else if scale > 1 {
		scale = 1
	}
	r.scale[chip][dir] = scale
	r.bkt[chip][dir].SetRate(r.cfg.LinkBW * scale)
}

// LinkScale returns the current residual scale of a link.
func (r *Ring) LinkScale(chip int, dir Direction) float64 { return r.scale[chip][dir] }

// LinkBytes returns the total bytes that have entered the directional link
// leaving chip in dir; windowed deltas give link utilization.
func (r *Ring) LinkBytes(chip int, dir Direction) int64 { return r.linkBytes[chip][dir] }

// LinkQueueLen returns the instantaneous egress-queue depth of a link.
func (r *Ring) LinkQueueLen(chip int, dir Direction) int { return r.egress[chip][dir].Len() }

// route picks the travel direction from src to dst: shortest path, hash tie-break.
func (r *Ring) route(src, dst int, line uint64) Direction {
	n := r.cfg.Chips
	cw := (dst - src + n) % n
	ccw := (src - dst + n) % n
	switch {
	case cw < ccw:
		return CW
	case ccw < cw:
		return CCW
	default: // equidistant (opposite chip on an even ring)
		if addr.Mix64(line)&1 == 0 {
			return CW
		}
		return CCW
	}
}

// Hops returns the number of link traversals between two chips.
func (r *Ring) Hops(src, dst int) int {
	n := r.cfg.Chips
	cw := (dst - src + n) % n
	ccw := (src - dst + n) % n
	return min(cw, ccw)
}

// CanInject reports whether chip src has egress queue space toward dst.
func (r *Ring) CanInject(src, dst int, line uint64) bool {
	return !r.egress[src][r.route(src, dst, line)].Full()
}

// Inject places a message on the ring at its source chip.
func (r *Ring) Inject(m Message) {
	if m.Src == m.Dst {
		panic("xchip: message injected with src == dst")
	}
	m.dir = r.route(m.Src, m.Dst, m.Req.Line)
	m.Req.CrossedRing = true
	r.egress[m.Src][m.dir].Push(m)
	r.pendingBy[m.Src]++
	r.injectsBy[m.Src]++
}

// Pending returns all messages queued or on the wire.
func (r *Ring) Pending() int {
	n := int32(0)
	for _, p := range r.pendingBy {
		n += p
	}
	return int(n)
}

// BytesMoved returns the bytes that entered any link.
func (r *Ring) BytesMoved() int64 {
	var n int64
	for c := range r.linkBytes {
		n += r.linkBytes[c][0] + r.linkBytes[c][1]
	}
	return n
}

// MsgsMoved returns the total link traversals (a 2-hop message counts twice).
func (r *Ring) MsgsMoved() int64 {
	var n int64
	for _, m := range r.msgsBy {
		n += m
	}
	return n
}

// Injects returns the total Inject calls since construction (monotone).
func (r *Ring) Injects() int64 {
	var n int64
	for _, i := range r.injectsBy {
		n += i
	}
	return n
}

// StateSig is a monotone signature that changes whenever any ring state
// mutation could move NextEvent earlier: injections, launches, intermediate
// hops, refused deliveries, and arrivals all bump at least one term. Event
// schedulers cache it to detect staleness of a memoized NextEvent.
func (r *Ring) StateSig() int64 {
	return r.Injects() + r.MsgsMoved() + r.Arrivals + r.hopped + r.refused
}

// NextEvent returns the earliest future cycle at which the ring can make
// progress: now+1 while any egress queue holds a message (launch is
// bandwidth-gated per cycle), else the earliest in-flight landing, or -1
// when the ring is fully idle.
func (r *Ring) NextEvent(now int64) int64 {
	if r.Pending() == 0 {
		return -1
	}
	next := int64(-1)
	for c := 0; c < r.cfg.Chips; c++ {
		if !r.egress[c][0].Empty() || !r.egress[c][1].Empty() {
			return now + 1
		}
		if due := r.landDueBy[c]; due >= 0 {
			if due <= now {
				// A refused delivery can leave later messages of the
				// same link undrained this cycle; they land next cycle.
				return now + 1
			}
			if next < 0 || due < next {
				next = due
			}
		}
	}
	return next
}

// NextLanding returns the earliest in-flight landing cycle, or -1 when
// nothing is on the wire. Unlike NextEvent it ignores egress queues: a fused
// multi-cycle epoch only needs to know when a message can *arrive* at
// another chip, because launches are per-source-chip local.
func (r *Ring) NextLanding() int64 {
	next := int64(-1)
	for c := 0; c < r.cfg.Chips; c++ {
		if due := r.landDueBy[c]; due >= 0 && (next < 0 || due < next) {
			next = due
		}
	}
	return next
}

// recomputeLandDue re-derives chip c's cached earliest landing due from its
// two delay-line heads, after the landing phase popped from them.
func (r *Ring) recomputeLandDue(c int) {
	due := int64(-1)
	if d, ok := r.inFlight[c][0].NextDue(); ok {
		due = d
	}
	if d, ok := r.inFlight[c][1].NextDue(); ok && (due < 0 || d < due) {
		due = d
	}
	r.landDueBy[c] = due
}

func (r *Ring) next(chip int, d Direction) int {
	if d == CW {
		return (chip + 1) % r.cfg.Chips
	}
	return (chip - 1 + r.cfg.Chips) % r.cfg.Chips
}

// Tick advances the ring one cycle. now is the global cycle counter.
// An idle ring returns immediately; link credit catches up lazily.
func (r *Ring) Tick(now int64, sink Sink) {
	if r.Pending() == 0 {
		r.lastRef = now
		return
	}
	// Landing phase: messages whose hop latency elapsed arrive at the next
	// chip — either delivered, or queued for the next hop.
	for c := 0; c < r.cfg.Chips; c++ {
		if due := r.landDueBy[c]; due < 0 || due > now {
			continue // nothing leaving chip c lands this cycle
		}
		for d := 0; d < 2; d++ {
			dir := Direction(d)
			for {
				m, ok := r.inFlight[c][d].PopDue(now)
				if !ok {
					break
				}
				at := r.next(c, dir)
				if at == m.Dst {
					if sink.CanAccept(at, m) {
						sink.Accept(at, m)
						r.Arrivals++
						r.pendingBy[c]--
					} else {
						// Destination busy: retry next cycle from a zero-
						// latency in-flight slot (models an arrival buffer).
						r.inFlight[c][d].Insert(now, 1, m)
						r.refused++
						break
					}
				} else {
					r.egress[at][d].Push(m)
					r.pendingBy[c]--
					r.pendingBy[at]++
					r.hopped++
				}
			}
		}
		r.recomputeLandDue(c)
	}
	// Launch phase: move queued messages onto links, bandwidth permitting.
	dt := now - r.lastRef
	r.lastRef = now
	for c := 0; c < r.cfg.Chips; c++ {
		r.launchChip(now, dt, c)
	}
}

// launchChip advances chip c's directional buckets by dt and moves its
// queued messages onto the wire, bandwidth permitting. It touches only
// per-chip state (egress/bkt/inFlight/linkBytes/msgsBy of chip c), which is
// what makes FusedLaunch safe to run from per-chip goroutines.
func (r *Ring) launchChip(now, dt int64, c int) {
	launched := false
	for d := 0; d < 2; d++ {
		bkt := r.bkt[c][d]
		q := r.egress[c][d]
		if q.Empty() {
			// Advance on an at-cap bucket only clamps; skipping it leaves the
			// exact credit value the old eager refill would have left.
			if !bkt.AtCap() {
				bkt.Advance(dt)
			}
			continue
		}
		bkt.Advance(dt)
		for bkt.CanTake() {
			m, ok := q.Pop()
			if !ok {
				break
			}
			bkt.Take(m.Bytes)
			r.linkBytes[c][d] += int64(m.Bytes)
			r.msgsBy[c]++
			r.inFlight[c][d].Insert(now, r.cfg.HopLatency, m)
			launched = true
		}
	}
	if launched {
		// Launches due at now+HopLatency can only lower an empty line's due:
		// anything already on the wire left earlier with the same hop
		// latency, except zero-latency refused-delivery retries, which are
		// earlier still — the min-update covers every case.
		if due := now + r.cfg.HopLatency; r.landDueBy[c] < 0 || due < r.landDueBy[c] {
			r.landDueBy[c] = due
		}
	}
}

// FusedLaunch runs the launch phase for one chip from inside a fused
// multi-cycle epoch, where per-chip goroutines tick their chip without a
// global ring Tick. Callers must guarantee no landing is due at or before
// now (NextLanding() < 0 || > now) — then the landing phase is a no-op and
// launches are independent per source chip.
//
// force preserves the serial idle-forfeit semantics: serial Tick advances
// every bucket whenever global Pending() > 0 and forfeits accrual (lastRef
// = now without Advance) when it is 0. The coordinator passes force =
// (Pending() > 0) as observed before the parallel phase; chips whose egress
// is empty then still catch their buckets up iff force. Chips left
// unadvanced are settled by FinishFused, which recomputes global pending
// after all lanes flushed — together reproducing exactly the serial
// advance-or-forfeit decision.
func (r *Ring) FusedLaunch(now int64, chip int, force bool) {
	if !force && r.egress[chip][0].Empty() && r.egress[chip][1].Empty() {
		return
	}
	r.advanced[chip] = true
	r.launchChip(now, now-r.lastRef, chip)
}

// FinishFused completes a fused cycle from the coordinating goroutine after
// every chip's FusedLaunch returned: chips that skipped their bucket
// advance catch up iff the ring is still non-idle (matching serial Tick's
// advance-all-or-forfeit rule), and lastRef moves to now.
func (r *Ring) FinishFused(now int64) {
	if r.Pending() > 0 {
		dt := now - r.lastRef
		for c := 0; c < r.cfg.Chips; c++ {
			if !r.advanced[c] {
				r.bkt[c][0].Advance(dt)
				r.bkt[c][1].Advance(dt)
			}
			r.advanced[c] = false
		}
	} else {
		for c := range r.advanced {
			r.advanced[c] = false
		}
	}
	r.lastRef = now
}
