package xchip

import (
	"testing"

	"repro/internal/memsys"
)

type sink struct {
	arrived map[int][]Message
	refuse  bool
}

func newSink() *sink { return &sink{arrived: map[int][]Message{}} }

func (s *sink) CanAccept(chip int, m Message) bool { return !s.refuse }
func (s *sink) Accept(chip int, m Message)         { s.arrived[chip] = append(s.arrived[chip], m) }

func ringMsg(src, dst int, line uint64) Message {
	return Message{Req: &memsys.Request{Line: line}, Src: src, Dst: dst, Bytes: 32}
}

func run(r *Ring, s Sink, cycles int) { runFrom(r, s, 0, cycles) }

func runFrom(r *Ring, s Sink, start, cycles int) {
	for now := int64(start); now < int64(start+cycles); now++ {
		r.Tick(now, s)
	}
}

func TestNeighbourDelivery(t *testing.T) {
	r := New(Config{Chips: 4, LinkBW: 96, HopLatency: 5})
	s := newSink()
	r.Inject(ringMsg(0, 1, 7))
	run(r, s, 10)
	if len(s.arrived[1]) != 1 {
		t.Fatalf("chip 1 got %d messages, want 1", len(s.arrived[1]))
	}
	if !s.arrived[1][0].Req.CrossedRing {
		t.Fatal("CrossedRing not marked")
	}
	if r.Pending() != 0 {
		t.Fatalf("Pending = %d after delivery", r.Pending())
	}
}

func TestTwoHopDelivery(t *testing.T) {
	r := New(Config{Chips: 4, LinkBW: 96, HopLatency: 5})
	s := newSink()
	r.Inject(ringMsg(0, 2, 7))
	run(r, s, 6)
	if len(s.arrived[2]) != 0 {
		t.Fatal("2-hop message arrived after one hop latency")
	}
	runFrom(r, s, 6, 10)
	if len(s.arrived[2]) != 1 {
		t.Fatalf("chip 2 got %d messages, want 1", len(s.arrived[2]))
	}
	if r.MsgsMoved() != 2 {
		t.Fatalf("MsgsMoved = %d, want 2 (two link traversals)", r.MsgsMoved())
	}
}

func TestHops(t *testing.T) {
	r := New(Config{Chips: 4, LinkBW: 1})
	cases := []struct{ s, d, want int }{
		{0, 1, 1}, {1, 0, 1}, {0, 2, 2}, {0, 3, 1}, {3, 0, 1}, {1, 3, 2}, {2, 2, 0},
	}
	for _, c := range cases {
		if got := r.Hops(c.s, c.d); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.s, c.d, got, c.want)
		}
	}
}

func TestOppositeChipUsesBothDirections(t *testing.T) {
	r := New(Config{Chips: 4, LinkBW: 1e9, HopLatency: 1})
	dirs := map[Direction]int{}
	for line := uint64(0); line < 200; line++ {
		dirs[r.route(0, 2, line)]++
	}
	if dirs[CW] < 60 || dirs[CCW] < 60 {
		t.Fatalf("tie-break imbalance: %v", dirs)
	}
}

func TestBandwidthLimit(t *testing.T) {
	// 32 B/cycle link, 32 B messages: ~100 messages in 100 cycles, not 200.
	r := New(Config{Chips: 4, LinkBW: 32, HopLatency: 1})
	s := newSink()
	for i := 0; i < 200; i++ {
		r.Inject(ringMsg(0, 1, uint64(i)))
	}
	run(r, s, 100)
	got := len(s.arrived[1])
	if got < 95 || got > 110 {
		t.Fatalf("delivered %d in 100 cycles at 1 msg/cycle, want ~100", got)
	}
}

func TestDeterministicRouting(t *testing.T) {
	a := New(Config{Chips: 4, LinkBW: 1})
	b := New(Config{Chips: 4, LinkBW: 1})
	for line := uint64(0); line < 100; line++ {
		if a.route(1, 3, line) != b.route(1, 3, line) {
			t.Fatal("routing not deterministic")
		}
	}
}

func TestSinkBackPressureRetries(t *testing.T) {
	r := New(Config{Chips: 4, LinkBW: 96, HopLatency: 1})
	s := newSink()
	s.refuse = true
	r.Inject(ringMsg(0, 1, 7))
	run(r, s, 10)
	if len(s.arrived[1]) != 0 {
		t.Fatal("delivered despite refusal")
	}
	if r.Pending() != 1 {
		t.Fatalf("Pending = %d, message lost", r.Pending())
	}
	s.refuse = false
	for now := int64(10); now < 20; now++ {
		r.Tick(now, s)
	}
	if len(s.arrived[1]) != 1 {
		t.Fatal("message not delivered after back-pressure cleared")
	}
}

func TestSetLinkBW(t *testing.T) {
	r := New(Config{Chips: 4, LinkBW: 96, HopLatency: 1})
	r.SetLinkBW(12)
	if r.Cfg().LinkBW != 12 {
		t.Fatalf("LinkBW = %v", r.Cfg().LinkBW)
	}
	s := newSink()
	for i := 0; i < 100; i++ {
		r.Inject(ringMsg(0, 1, uint64(i)))
	}
	run(r, s, 100)
	// 12 B/cycle with 32 B msgs ≈ 0.375 msg/cycle ≈ 37 in 100 cycles.
	got := len(s.arrived[1])
	if got < 30 || got > 45 {
		t.Fatalf("delivered %d, want ~37 at reduced bandwidth", got)
	}
}

func TestInjectPanicsOnSelf(t *testing.T) {
	r := New(Config{Chips: 4, LinkBW: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("self-injection did not panic")
		}
	}()
	r.Inject(ringMsg(2, 2, 0))
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with 1 chip did not panic")
		}
	}()
	New(Config{Chips: 1, LinkBW: 1})
}

func TestTwoChipRing(t *testing.T) {
	// GPU-count sensitivity uses a 2-chip ring; every remote hop is distance 1.
	r := New(Config{Chips: 2, LinkBW: 96, HopLatency: 2})
	s := newSink()
	r.Inject(ringMsg(0, 1, 3))
	r.Inject(ringMsg(1, 0, 4))
	run(r, s, 10)
	if len(s.arrived[0]) != 1 || len(s.arrived[1]) != 1 {
		t.Fatalf("arrivals %d,%d", len(s.arrived[0]), len(s.arrived[1]))
	}
}

// Property: every injected message is eventually delivered exactly once,
// regardless of the src/dst mix.
func TestRingDeliveryProperty(t *testing.T) {
	r := New(Config{Chips: 4, LinkBW: 64, HopLatency: 3})
	s := newSink()
	want := map[int]int{}
	n := 0
	for i := uint64(0); i < 200; i++ {
		src := int(i % 4)
		dst := int((i / 4) % 4)
		if src == dst {
			continue
		}
		r.Inject(ringMsg(src, dst, i))
		want[dst]++
		n++
	}
	for now := int64(0); now < 5000 && r.Pending() > 0; now++ {
		r.Tick(now, s)
	}
	if r.Pending() != 0 {
		t.Fatalf("%d messages stuck on the ring", r.Pending())
	}
	total := 0
	for dst, c := range want {
		if len(s.arrived[dst]) != c {
			t.Fatalf("chip %d received %d, want %d", dst, len(s.arrived[dst]), c)
		}
		total += c
	}
	if int(r.Arrivals) != total || total != n {
		t.Fatalf("arrivals %d, want %d", r.Arrivals, n)
	}
}
