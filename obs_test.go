package sac_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	sac "repro"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenObserved runs the deterministic golden workload — SN under SAC, the
// benchmark whose sharing pattern drives a profile → decide → reconfigure
// sequence — with an observer attached.
func goldenObserved(t *testing.T) *sac.Observer {
	t.Helper()
	spec, err := sac.Benchmark("SN")
	if err != nil {
		t.Fatal(err)
	}
	ob := sac.NewObserver(0)
	if _, err := sac.Run(fastConfig().WithOrg(sac.SAC), spec,
		sac.WithObserver(ob), sac.WithMetricsWindow(2000)); err != nil {
		t.Fatal(err)
	}
	return ob
}

// checkGolden compares got against the named golden file, rewriting it under
// -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test -run Golden -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden (len got %d, want %d); rerun with -update if intended",
			name, len(got), len(want))
	}
}

// TestGoldenPrometheus pins the exact Prometheus text exposition of a short
// deterministic run: metric names, HELP/TYPE lines, label sets and final
// counter values.
func TestGoldenPrometheus(t *testing.T) {
	ob := goldenObserved(t)
	var b bytes.Buffer
	if err := ob.Metrics.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.Bytes()
	for _, want := range []string{
		"# TYPE sacsim_cycles_total counter",
		"# TYPE sacsim_llc_hit_rate gauge",
		`sacsim_sac_mode{chip="0"}`,
		`sacsim_ring_link_utilization{chip="3",dir="ccw"}`,
	} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	checkGolden(t, "metrics.prom", out)
}

// TestGoldenChromeTrace pins the Chrome trace_event JSON of the same run and
// validates the Perfetto-required envelope.
func TestGoldenChromeTrace(t *testing.T) {
	ob := goldenObserved(t)
	var b bytes.Buffer
	if err := ob.Trace.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit == "" || len(doc.TraceEvents) == 0 {
		t.Fatalf("trace envelope incomplete: %+v", doc)
	}
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if n, ok := e["name"].(string); ok {
			names[n] = true
		}
	}
	for _, want := range []string{"process_name", "profile", "decide", "reconfigure", "sn"} {
		if !names[want] {
			t.Fatalf("trace missing %q events; have %v", want, names)
		}
	}
	checkGolden(t, "trace.json", b.Bytes())
}

// TestAPICompatWrappers proves the deprecated entry points are bit-identical
// to the options-based Run: same workload, same stats, field for field.
func TestAPICompatWrappers(t *testing.T) {
	spec, err := sac.Benchmark("RN")
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig().WithOrg(sac.SAC)
	base, err := sac.Run(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	viaWorkload, err := sac.RunWorkload(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, viaWorkload) {
		t.Fatal("RunWorkload diverged from Run")
	}
	viaFaults, err := sac.RunWithFaults(cfg, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, viaFaults) {
		t.Fatal("RunWithFaults(nil) diverged from Run")
	}

	plan, err := sac.ParseFaultPlan("dram:1.0@3000-9000*0.5")
	if err != nil {
		t.Fatal(err)
	}
	oldStyle, err := sac.RunWithFaults(cfg, spec, plan)
	if err != nil {
		t.Fatal(err)
	}
	optStyle, err := sac.Run(cfg, spec, sac.WithFaults(plan))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(oldStyle, optStyle) {
		t.Fatal("WithFaults diverged from RunWithFaults")
	}
}

// TestObserverDoesNotPerturbSimulation: with an observer attached, every
// simulated outcome must be identical to the unobserved run. Only the
// Skipped accounting may differ (metrics windows bound idle fast-forwards,
// so boundary cycles are stepped instead of skipped).
func TestObserverDoesNotPerturbSimulation(t *testing.T) {
	spec, err := sac.Benchmark("SN")
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig().WithOrg(sac.SAC)
	plain, err := sac.Run(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	observed, err := sac.Run(cfg, spec, sac.WithObserver(sac.NewObserver(1000)))
	if err != nil {
		t.Fatal(err)
	}
	a, b := *plain, *observed
	a.Skipped, b.Skipped = 0, 0
	if !reflect.DeepEqual(&a, &b) {
		t.Fatalf("observer changed simulation outcomes:\nplain    %+v\nobserved %+v", a, b)
	}
}

// TestRunWithCanceledContext: a canceled context fails the run with a
// *CellError wrapping context.Canceled.
func TestRunWithCanceledContext(t *testing.T) {
	spec, err := sac.Benchmark("RN")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := sac.Run(fastConfig(), spec, sac.WithContext(ctx))
	if st != nil {
		t.Fatal("canceled run returned stats")
	}
	var cell *sac.CellError
	if !errors.As(err, &cell) {
		t.Fatalf("error %v (%T), want *CellError", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if cell.Benchmark != "RN" {
		t.Fatalf("CellError names %q, want RN", cell.Benchmark)
	}
}

// TestRunnerContextCancelsSweep: a canceled Runner context fails every cell
// with the context error instead of simulating.
func TestRunnerContextCancelsSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := sac.NewRunner()
	r.Base = fastConfig()
	r.Ctx = ctx
	spec, err := sac.Benchmark("RN")
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.RunAll([]sac.RunRequest{{Cfg: r.Base.WithOrg(sac.MemorySide), Spec: spec}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("sweep error %v, want context.Canceled", err)
	}
}

// TestMetricsScrapeDuringSweep scrapes the live metrics endpoint while a
// parallel sweep executes — the writer/scraper interleaving is what the race
// detector checks in `make race`.
func TestMetricsScrapeDuringSweep(t *testing.T) {
	r := sac.NewRunner()
	r.Base = fastConfig()
	r.Benchmarks = []string{"RN", "BP"}
	r.Parallelism = 2
	r.Obs = sac.NewObserver(0)
	var mu sync.Mutex
	var cells []sac.CellResult
	r.OnCellDone = func(c sac.CellResult) {
		mu.Lock()
		cells = append(cells, c)
		mu.Unlock()
	}
	handler := sac.MetricsHandler(r.Obs.Metrics)

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			rec := httptest.NewRecorder()
			handler.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
			if rec.Code != 200 {
				t.Errorf("scrape status %d", rec.Code)
				return
			}
		}
	}()

	var reqs []sac.RunRequest
	for _, name := range r.Benchmarks {
		spec, err := sac.Benchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, org := range []sac.Org{sac.MemorySide, sac.SAC} {
			reqs = append(reqs, sac.RunRequest{Cfg: r.Base.WithOrg(org), Spec: spec})
		}
	}
	runs, err := r.RunAll(reqs)
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for i, run := range runs {
		if run == nil {
			t.Fatalf("cell %d missing", i)
		}
	}
	if len(cells) != len(reqs) {
		t.Fatalf("OnCellDone fired %d times, want %d", len(cells), len(reqs))
	}

	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	if !strings.Contains(body, "sacsweep_cells_completed_total 4") {
		t.Fatalf("sweep metrics wrong after completion:\n%s", body)
	}
	if !strings.Contains(body, "sacsweep_cells_inflight 0") {
		t.Fatalf("inflight gauge not drained:\n%s", body)
	}
}
