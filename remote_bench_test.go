package sac_test

// Remote serving-path benchmarks: how fast a warmed sacd answers a full
// 256-cell estimate sweep over the batch path (one jobs:batch submission)
// versus the legacy per-job path (256 × submit + poll + result). Both run
// against a real loopback HTTP daemon, so the numbers include routing, JSON,
// and the zero-copy store-hit plumbing — everything but simulation cost.

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	sac "repro"
	"repro/client"
	"repro/internal/server"
	"repro/internal/store"
)

// remoteUniverse builds the 256-cell sweep: all 16 benchmarks × 4 LLC
// organizations × 4 workload scales, estimate fidelity, explicit configs so
// the store keys are stable.
func remoteUniverse() []client.JobRequest {
	orgs := []string{"SAC", "memory-side", "SM-side", "static"}
	scales := []int{256, 384, 512, 640}
	var reqs []client.JobRequest
	for _, bench := range sac.BenchmarkNames() {
		for _, org := range orgs {
			for _, scale := range scales {
				cfg := sac.ScaledConfig()
				cfg.WorkloadScale = scale
				reqs = append(reqs, client.JobRequest{
					Benchmark: bench,
					Org:       org,
					Config:    &cfg,
					Fidelity:  client.FidelityEstimate,
				})
			}
		}
	}
	return reqs
}

// startBenchDaemon boots a loopback sacd over a fresh store and warms it
// with the full universe so the measured phase is pure serving.
func startBenchDaemon(tb testing.TB, universe []client.JobRequest) *client.Client {
	tb.Helper()
	st, err := store.Open(tb.TempDir(), store.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	s := server.New(server.Config{Store: st, QueueCap: 2 * len(universe)})
	s.Start()
	hs := httptest.NewServer(s.Handler())
	tb.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
		st.Close()
	})
	c := client.New(hs.URL, client.WithPollInterval(2*time.Millisecond))
	ctx := context.Background()
	for off := 0; off < len(universe); off += client.MaxBatch {
		end := min(off+client.MaxBatch, len(universe))
		sts, err := c.SubmitBatch(ctx, universe[off:end])
		if err != nil {
			tb.Fatal(err)
		}
		for _, st := range sts {
			if st.State != client.StateDone {
				tb.Fatalf("warmup cell %s: %s (%s)", st.ID, st.State, st.Error)
			}
		}
	}
	return c
}

// sweepBatch runs one full sweep over the batch path: a single jobs:batch
// submission whose response already carries every terminal status.
func sweepBatch(tb testing.TB, c *client.Client, universe []client.JobRequest) {
	sts, err := c.SubmitBatch(context.Background(), universe)
	if err != nil {
		tb.Fatal(err)
	}
	for i := range sts {
		if sts[i].State != client.StateDone {
			tb.Fatalf("cell %d: %s (%s)", i, sts[i].State, sts[i].Error)
		}
	}
}

// sweepPerJob runs the same sweep the pre-batch way: one submit, one status
// wait, and one result fetch per cell, serially — what sacsweep -remote did
// per cell before batching (its concurrency came only from sweep workers).
func sweepPerJob(tb testing.TB, c *client.Client, universe []client.JobRequest) {
	ctx := context.Background()
	for i := range universe {
		st, err := c.Submit(ctx, universe[i])
		if err != nil {
			tb.Fatal(err)
		}
		if st, err = c.Wait(ctx, st.ID); err != nil {
			tb.Fatal(err)
		}
		if st.State != client.StateDone {
			tb.Fatalf("cell %d: %s (%s)", i, st.State, st.Error)
		}
		if _, err := c.Result(ctx, st.ID); err != nil {
			tb.Fatal(err)
		}
	}
}

// BenchmarkRemoteEstimateSweep measures the batch path; the jobs/s metric is
// the whole-sweep rate (256 cells per op).
func BenchmarkRemoteEstimateSweep(b *testing.B) {
	universe := remoteUniverse()
	c := startBenchDaemon(b, universe)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sweepBatch(b, c, universe)
	}
	b.ReportMetric(float64(b.N*len(universe))/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkRemoteEstimateSweepPerJob measures the legacy per-job path over
// the identical warmed universe.
func BenchmarkRemoteEstimateSweepPerJob(b *testing.B) {
	universe := remoteUniverse()
	c := startBenchDaemon(b, universe)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sweepPerJob(b, c, universe)
	}
	b.ReportMetric(float64(b.N*len(universe))/b.Elapsed().Seconds(), "jobs/s")
}
