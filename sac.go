// Package sac is a from-scratch reproduction of "SAC: Sharing-Aware Caching
// in Multi-Chip GPUs" (Zhang, Naderan-Tahan, Jahre, Eeckhout — ISCA 2023).
//
// It bundles a cycle-driven multi-chip GPU memory-system simulator (SMs with
// private L1s, per-chip crossbar NoCs, LLC slices with MSHRs, an inter-chip
// ring, DRAM partitions, first-touch page placement and PAE address
// mapping), the five LLC organizations the paper compares (memory-side,
// SM-side, the Static L1.5, Dynamic way-partitioning, and SAC itself), the
// EAB analytical model with its CRD-based profiling counters, the 16
// Table-4 workloads as deterministic synthetic address streams, and a
// harness that regenerates every table and figure of the paper's evaluation.
//
// Quick start:
//
//	cfg := sac.ScaledConfig()                  // laptop-scale Table 3
//	spec, _ := sac.Benchmark("RN")             // a Table 4 workload
//	mem, _ := sac.Run(cfg.WithOrg(sac.MemorySide), spec)
//	dyn, _ := sac.Run(cfg.WithOrg(sac.SAC), spec)
//	fmt.Printf("SAC speedup: %.2fx\n", sac.Speedup(dyn, mem))
//
// Experiments:
//
//	r := sac.NewRunner()
//	fig8, _ := r.Fig8()
//	fig8.Print(os.Stdout)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every experiment.
package sac

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/fault"
	"repro/internal/gpu"
	"repro/internal/llc"
	"repro/internal/noccost"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/workload"
)

// Config describes a simulated multi-chip GPU (the paper's Table 3).
type Config = gpu.Config

// PaperConfig returns the paper's full-scale Table 3 baseline.
func PaperConfig() Config { return gpu.PaperConfig() }

// ScaledConfig returns the laptop-scale preset with all of the paper's
// bandwidth and capacity ratios preserved (DESIGN.md §7).
func ScaledConfig() Config { return gpu.ScaledConfig() }

// MCMConfig returns the interposer-class multi-chip-module variant (high
// inter-chip bandwidth; the paper's intro taxonomy).
func MCMConfig() Config { return gpu.MCMConfig() }

// MultiSocketConfig returns the PCB-level multi-socket variant (PCIe-class
// inter-chip links).
func MultiSocketConfig() Config { return gpu.MultiSocketConfig() }

// Org selects a last-level-cache organization.
type Org = llc.Org

// The five organizations of the paper's comparison (§5).
const (
	MemorySide = llc.MemorySide
	SMSide     = llc.SMSide
	Static     = llc.Static
	Dynamic    = llc.Dynamic
	SAC        = llc.SAC
)

// Orgs lists all organizations in comparison order.
func Orgs() []Org { return llc.Orgs() }

// Spec is a benchmark workload (a sequence of kernel invocations).
type Spec = workload.Spec

// Kernel parameterizes one kernel invocation's address stream.
type Kernel = workload.Kernel

// Benchmarks returns the 16 Table-4 workloads in paper order.
func Benchmarks() []Spec { return workload.Catalog() }

// Benchmark returns one Table-4 workload by name (e.g. "BFS").
func Benchmark(name string) (Spec, error) { return workload.ByName(name) }

// BenchmarkNames returns the catalog names in paper order.
func BenchmarkNames() []string { return workload.Names() }

// Stats holds the measurements of one simulation (IPC, LLC hit rates,
// response-origin breakdown, occupancy census, per-kernel records, ...).
type Stats = stats.Run

// guard converts a panic escaping a library entry point into a returned
// error, so a simulator bug fails the one call instead of the caller's
// process. The full panic value is preserved in the error text.
func guard(err *error) {
	if v := recover(); v != nil {
		*err = fmt.Errorf("sac: internal panic: %v", v)
	}
}

// Workload is any source of per-warp access streams: the built-in synthetic
// Specs and trace replays (package repro/internal/trace) both implement it.
type Workload = gpu.Workload

// Fidelity selects one rung of the simulation fidelity ladder: how much
// accuracy a Run buys with how much time. All three rungs are deterministic
// and share the decision contract pinned by the cross-fidelity tests: the
// fast rungs predict the exact engine's SAC org decision on all 16 Table-4
// workloads.
type Fidelity string

// The fidelity rungs, cheapest first.
const (
	// FidelityEstimate evaluates the paper's EAB analytical model over a
	// short profiled stream prefix — no cycle loop at all, microseconds to
	// low milliseconds per workload. Cycle counts are closed-form estimates;
	// fault plans are not supported.
	FidelityEstimate Fidelity = backend.Estimate
	// FidelitySampled cycle-simulates each kernel's opening interval on the
	// real engine (covering SAC's profiling window, so decisions are taken
	// by the genuine controller) and extrapolates the remainder
	// analytically. Typically one to two orders of magnitude faster than
	// exact.
	FidelitySampled Fidelity = backend.Sampled
	// FidelityExact is the unmodified cycle-exact simulator — the default,
	// byte-identical to a Run without WithFidelity.
	FidelityExact Fidelity = backend.Exact
)

// RunOption configures one Run call. Options compose; later options win on
// conflict. A Run with no options is a plain healthy, unobserved,
// uncancellable simulation.
type RunOption func(*gpu.RunOpts)

// WithFidelity selects the backend rung a Run executes on ("" keeps the
// cycle-exact default). Results carry their rung in Stats.Fidelity, and the
// result cache keys estimate/sampled/exact results separately, so a fast
// rung's answer is never served for an exact request.
func WithFidelity(f Fidelity) RunOption {
	return func(o *gpu.RunOpts) { o.Fidelity = string(f) }
}

// WithFaults injects a deterministic fault plan (nil or empty plan is
// exactly a healthy run).
func WithFaults(plan *FaultPlan) RunOption {
	return func(o *gpu.RunOpts) { o.Faults = plan }
}

// WithObserver attaches an observability sink: its metrics registry is
// updated on every sampling window and its tracer records kernel, SAC,
// fault and watchdog events. A nil (or empty) observer is ignored.
func WithObserver(ob *Observer) RunOption {
	return func(o *gpu.RunOpts) { o.Observer = ob }
}

// WithMetricsWindow sets the metrics sampling window in cycles (only
// meaningful together with WithObserver; 0 keeps the observer's own window,
// then the package default of obs.DefaultWindow cycles).
func WithMetricsWindow(n int64) RunOption {
	return func(o *gpu.RunOpts) { o.MetricsWindow = n }
}

// WithContext makes the run cancellable: the cycle loop polls ctx on a
// coarse stride and a canceled run returns ctx's error wrapped in a
// *CellError naming the benchmark and organization.
func WithContext(ctx context.Context) RunOption {
	return func(o *gpu.RunOpts) { o.Ctx = ctx }
}

// WithWorkers sets intra-run chip parallelism: each simulated cycle's
// per-chip phases tick concurrently on up to n workers (clamped to the chip
// count), with results bit-identical to serial at any n. 0 = auto (one
// worker per chip, capped at GOMAXPROCS); 1 = serial. Hardware-coherence
// configurations always run serially. When combining many concurrent runs
// (a sweep), prefer the Runner's ChipWorkers budget so cells × chip workers
// do not oversubscribe cores.
func WithWorkers(n int) RunOption {
	return func(o *gpu.RunOpts) { o.Workers = n }
}

// Run executes workload w on cfg and returns the run statistics. Invalid
// configurations and workloads come back as errors; no panic escapes to the
// caller. Options attach fault plans, observers and cancellation:
//
//	st, err := sac.Run(cfg, spec,
//	    sac.WithObserver(obs),
//	    sac.WithContext(ctx))
func Run(cfg Config, w Workload, opts ...RunOption) (st *Stats, err error) {
	defer guard(&err)
	var o gpu.RunOpts
	for _, opt := range opts {
		opt(&o)
	}
	st, err = backend.Run(cfg, w, o)
	if err != nil && o.Ctx != nil &&
		(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		err = &CellError{Benchmark: w.SourceName(), Org: cfg.Org.String(), Err: err}
	}
	return st, err
}

// RunWorkload executes an arbitrary workload source (e.g. a trace replay).
//
// Deprecated: Run accepts any Workload directly; call Run(cfg, w) instead.
func RunWorkload(cfg Config, w Workload) (*Stats, error) {
	return Run(cfg, w)
}

// System is a constructed simulator instance; use it instead of Run to
// inspect state (mode, SAC decisions) after execution.
type System = gpu.System

// NewSystem builds a simulator without running it.
func NewSystem(cfg Config, spec Spec) (s *System, err error) {
	defer guard(&err)
	return gpu.New(cfg, spec)
}

// Fault injection — deterministic degradation of links, DRAM channels, LLC
// slices, and NoC ports at exact cycles (DESIGN.md "Fault model").

// FaultPlan is a seeded, serializable schedule of fault events. Plans are
// part of the simulation key: the same (config, workload, plan) triple is
// bit-identical at any parallelism.
type FaultPlan = fault.Plan

// FaultEvent is one scheduled degradation of one unit.
type FaultEvent = fault.Event

// FaultDomain selects which hardware domain an event degrades.
type FaultDomain = fault.Domain

// The injectable fault domains.
const (
	FaultXChip = fault.XChip // inter-chip ring links
	FaultDRAM  = fault.DRAM  // DRAM channels
	FaultLLC   = fault.LLC   // LLC slice ways
	FaultNoC   = fault.NoC   // intra-chip NoC ingress ports
)

// ParseFaultPlan parses the compact fault DSL, e.g.
// "xchip:0.cw@2000-30000*0.5; dram:1.0@1000*0".
func ParseFaultPlan(s string) (*FaultPlan, error) { return fault.Parse(s) }

// LoadFaultPlan reads a JSON fault plan from a file.
func LoadFaultPlan(path string) (*FaultPlan, error) { return fault.Load(path) }

// GenerateFaultPlan draws a reproducible random plan for cfg's shape: n
// events over the first horizon cycles, fully determined by seed.
func GenerateFaultPlan(cfg Config, seed int64, n int, horizon int64) *FaultPlan {
	return fault.Generate(seed, cfg.FaultShape(), n, horizon)
}

// RunWithFaults executes any workload source (a Spec or a trace replay) on
// cfg with plan injected (nil or empty plan is exactly Run).
//
// Deprecated: call Run(cfg, w, WithFaults(plan)) instead.
func RunWithFaults(cfg Config, w Workload, plan *FaultPlan) (*Stats, error) {
	return Run(cfg, w, WithFaults(plan))
}

// StallError reports a watchdog abort: no request retired within
// Config.WatchdogCycles. It carries a queue-occupancy dump for diagnosis.
type StallError = gpu.StallError

// CellError is the structured failure of one sweep cell (simulation error
// or contained panic); Runner.RunAll joins one per distinct failed cell.
type CellError = eval.CellError

// Observability — a live metrics registry plus a Chrome-trace event tracer,
// attachable to any Run via WithObserver (DESIGN.md "Observability"). With
// no observer attached the simulator's hot path is allocation-free and pays
// one nil check per guarded site.

// Observer bundles the two observability sinks. Either field may be nil to
// enable only the other.
type Observer = obs.Observer

// MetricsRegistry is a set of named counter/gauge series, exportable as
// Prometheus text exposition (version 0.0.4) or JSON. Safe for concurrent
// scraping while a simulation writes.
type MetricsRegistry = obs.Registry

// Tracer records trace events in Chrome trace_event JSON; its output opens
// directly in Perfetto (ui.perfetto.dev) or chrome://tracing. Trace
// timestamps are simulated cycles interpreted as microseconds.
type Tracer = obs.Tracer

// NewObserver returns an Observer with a fresh registry and tracer sampling
// every window cycles (0 = the default window of obs.DefaultWindow cycles).
func NewObserver(window int64) *Observer { return obs.New(window) }

// MetricsHandler serves a registry over HTTP: GET /metrics (Prometheus) and
// GET /metrics.json.
func MetricsHandler(r *MetricsRegistry) http.Handler { return obs.Handler(r) }

// Speedup returns a's performance relative to b (ratio of IPC).
func Speedup(a, b *Stats) float64 { return stats.Speedup(a, b) }

// HarmonicMean aggregates speedups the way the paper reports averages.
func HarmonicMean(speedups []float64) float64 { return stats.HarmonicMeanSpeedup(speedups) }

// Runner executes the paper's experiments (one method per table/figure).
// Simulations are memoized across experiments and run concurrently up to
// Runner.Parallelism (0 = all cores); each simulation is single-threaded
// and deterministic, so results are bit-identical at any parallelism.
type Runner = eval.Runner

// RunRequest names one (configuration, workload) simulation for
// Runner.Prefetch / Runner.RunAll.
type RunRequest = eval.RunRequest

// CellResult is the per-cell progress record passed to Runner.OnCellDone.
type CellResult = eval.CellResult

// NewRunner returns a Runner over ScaledConfig and all 16 benchmarks.
func NewRunner() *Runner { return eval.NewRunner() }

// ResultCache is a persistent content-addressed result store: each
// simulation's statistics are filed under a hash of (configuration,
// benchmark, fault plan), so identical cells are simulated once across
// processes and machine reboots. Attach one to Runner.Store, point
// `sacsweep -cache-dir` at it, or serve it with the sacd daemon — all
// three share the same on-disk format and key derivation.
type ResultCache = store.Store

// OpenResultCache opens (or creates) a result cache rooted at dir.
// maxBytes > 0 bounds the cache: least-recently-used entries are evicted
// past the limit; 0 means unbounded.
func OpenResultCache(dir string, maxBytes int64) (*ResultCache, error) {
	return store.Open(dir, store.Options{MaxBytes: maxBytes})
}

// CacheKey returns the content address a simulation cell is filed under in
// a ResultCache (and reported as "key" by the sacd API). Any difference in
// configuration, benchmark, or fault plan yields a different key.
func CacheKey(cfg Config, benchmark string, plan *FaultPlan) string {
	return store.Key(cfg, benchmark, plan.Key())
}

// CacheKeyAt is CacheKey with an explicit fidelity rung. "" and
// FidelityExact address the same keys CacheKey does (exact results keep
// their pre-ladder addresses); estimate and sampled results live under
// distinct keys and can never alias an exact one.
func CacheKeyAt(cfg Config, benchmark string, plan *FaultPlan, f Fidelity) string {
	return store.KeyAt(cfg, benchmark, plan.Key(), string(f))
}

// FastSet is a representative 6-benchmark subset for expensive sweeps.
func FastSet() []string { return eval.FastSet() }

// Axis identifies a Figure 14 design-space dimension.
type Axis = eval.Axis

// The Figure 14 sweep axes.
const (
	AxisInterChipBW = eval.AxisInterChipBW
	AxisLLCCapacity = eval.AxisLLCCapacity
	AxisMemory      = eval.AxisMemory
	AxisCoherence   = eval.AxisCoherence
	AxisGPUCount    = eval.AxisGPUCount
	AxisSectored    = eval.AxisSectored
	AxisPageSize    = eval.AxisPageSize
)

// EAB model surface — the paper's analytical contribution (§3.3), usable
// standalone: compute effective available bandwidth for both organizations
// from architecture parameters and profiled workload inputs.

// ArchParams are the architecture-only EAB inputs (Table 2).
type ArchParams = core.ArchParams

// WorkloadInputs are the profiled workload-dependent EAB inputs.
type WorkloadInputs = core.WorkloadInputs

// EABDecision is the outcome of comparing both organizations' EABs.
type EABDecision = core.Decision

// DecideEAB evaluates the EAB model with threshold theta (the paper's
// default is 0.05) and returns which organization it selects.
func DecideEAB(a ArchParams, w WorkloadInputs, theta float64) EABDecision {
	return core.Decide(a, w, theta)
}

// LSU computes the LLC slice uniformity metric from per-slice request
// counters (§3.3).
func LSU(requests []int64) float64 { return core.LSU(requests) }

// HardwareBudget reports SAC's per-chip counter hardware cost (§3.6); with
// the paper's parameters it returns 620 bytes (conventional caches) or 812
// bytes (sectored).
func HardwareBudget(sectored bool) core.Budget {
	sectors := 1
	if sectored {
		sectors = 4
	}
	return core.HardwareBudget(8, 16, 30, 4, sectors, 16)
}

// NoCCost compares the NoC area/power of the three implementable
// organizations (the paper's DSENT/CACTI numbers, §2.1 and §3.6).
func NoCCost() noccost.Report {
	return noccost.Compare(noccost.PaperShape(), noccost.Tech22())
}

// WorkingSets runs the Figure 11 working-set analysis for one workload:
// unique bytes touched per window, classified truly/falsely/non-shared.
func WorkingSets(cfg Config, spec Spec, windows []int64) (profile.Result, error) {
	an, err := profile.New(cfg.Machine(), windows, 32)
	if err != nil {
		return profile.Result{}, err
	}
	return an.Analyze(spec)
}
