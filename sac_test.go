package sac_test

import (
	"testing"

	sac "repro"
)

// fastConfig shrinks the scaled preset for test speed while keeping all
// bandwidth and capacity ratios.
func fastConfig() sac.Config {
	cfg := sac.ScaledConfig()
	cfg.SMsPerChip = 4
	cfg.WarpsPerSM = 4
	cfg.SlicesPerChip = 2
	cfg.LLCBytesPerChip = 64 << 10
	cfg.L1BytesPerSM = 4 << 10
	cfg.ChannelsPerChip = 2
	cfg.ChannelBW = 32
	cfg.RingLinkBW = 12
	cfg.WorkloadScale = 512
	cfg.SACOpts.WindowCycles = 1500
	return cfg
}

func TestPublicAPIQuickstart(t *testing.T) {
	spec, err := sac.Benchmark("RN")
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig()
	mem, err := sac.Run(cfg.WithOrg(sac.MemorySide), spec)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := sac.Run(cfg.WithOrg(sac.SAC), spec)
	if err != nil {
		t.Fatal(err)
	}
	if s := sac.Speedup(dyn, mem); s <= 0 {
		t.Fatalf("speedup %v", s)
	}
}

func TestBenchmarkCatalog(t *testing.T) {
	if got := len(sac.Benchmarks()); got != 16 {
		t.Fatalf("catalog size %d", got)
	}
	if got := len(sac.BenchmarkNames()); got != 16 {
		t.Fatalf("names %d", got)
	}
	if _, err := sac.Benchmark("NOPE"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if len(sac.Orgs()) != 5 {
		t.Fatal("org list wrong")
	}
	for _, n := range sac.FastSet() {
		if _, err := sac.Benchmark(n); err != nil {
			t.Fatalf("FastSet name %q invalid", n)
		}
	}
}

func TestEABModelSurface(t *testing.T) {
	arch := sac.PaperConfig().ArchParams()
	w := sac.WorkloadInputs{RLocal: 0.3}
	w.MemSide.LLCHit, w.MemSide.LSU = 0.8, 0.5
	w.SMSide.LLCHit, w.SMSide.LSU = 0.7, 0.95
	d := sac.DecideEAB(arch, w, 0.05)
	if !d.PickSM {
		t.Fatalf("SP-shaped inputs stayed memory-side: %+v", d)
	}
	if got := sac.LSU([]int64{10, 10}); got != 1 {
		t.Fatalf("LSU = %v", got)
	}
}

func TestHardwareBudgetSurface(t *testing.T) {
	if b := sac.HardwareBudget(false); b.TotalBytes != 620 {
		t.Fatalf("conventional budget %d, want 620", b.TotalBytes)
	}
	if b := sac.HardwareBudget(true); b.TotalBytes != 812 {
		t.Fatalf("sectored budget %d, want 812", b.TotalBytes)
	}
}

func TestWorkingSetsSurface(t *testing.T) {
	spec, _ := sac.Benchmark("RN")
	res, err := sac.WorkingSets(fastConfig(), spec, []int64{1000, 10000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) != 2 || res.FootprintMB <= 0 {
		t.Fatalf("result %+v", res)
	}
}

func TestNewSystemExposesMode(t *testing.T) {
	spec, _ := sac.Benchmark("BP")
	sys, err := sac.NewSystem(fastConfig().WithOrg(sac.MemorySide), spec)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Mode().String() != "memory-side" {
		t.Fatalf("mode %v", sys.Mode())
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRunnerSurface(t *testing.T) {
	r := &sac.Runner{Base: fastConfig(), Benchmarks: []string{"RN"}}
	f, err := r.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.KernelNames) == 0 {
		t.Fatal("no kernels")
	}
}

func TestHarmonicMeanSurface(t *testing.T) {
	if hm := sac.HarmonicMean([]float64{1, 1}); hm != 1 {
		t.Fatalf("HM = %v", hm)
	}
}
