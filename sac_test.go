package sac_test

import (
	"strings"
	"testing"

	sac "repro"
	"repro/internal/workload"
)

// fastConfig shrinks the scaled preset for test speed while keeping all
// bandwidth and capacity ratios.
func fastConfig() sac.Config {
	cfg := sac.ScaledConfig()
	cfg.SMsPerChip = 4
	cfg.WarpsPerSM = 4
	cfg.SlicesPerChip = 2
	cfg.LLCBytesPerChip = 64 << 10
	cfg.L1BytesPerSM = 4 << 10
	cfg.ChannelsPerChip = 2
	cfg.ChannelBW = 32
	cfg.RingLinkBW = 12
	cfg.WorkloadScale = 512
	cfg.SACOpts.WindowCycles = 1500
	return cfg
}

func TestPublicAPIQuickstart(t *testing.T) {
	spec, err := sac.Benchmark("RN")
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig()
	mem, err := sac.Run(cfg.WithOrg(sac.MemorySide), spec)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := sac.Run(cfg.WithOrg(sac.SAC), spec)
	if err != nil {
		t.Fatal(err)
	}
	if s := sac.Speedup(dyn, mem); s <= 0 {
		t.Fatalf("speedup %v", s)
	}
}

func TestBenchmarkCatalog(t *testing.T) {
	if got := len(sac.Benchmarks()); got != 16 {
		t.Fatalf("catalog size %d", got)
	}
	if got := len(sac.BenchmarkNames()); got != 16 {
		t.Fatalf("names %d", got)
	}
	if _, err := sac.Benchmark("NOPE"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if len(sac.Orgs()) != 5 {
		t.Fatal("org list wrong")
	}
	for _, n := range sac.FastSet() {
		if _, err := sac.Benchmark(n); err != nil {
			t.Fatalf("FastSet name %q invalid", n)
		}
	}
}

func TestEABModelSurface(t *testing.T) {
	arch := sac.PaperConfig().ArchParams()
	w := sac.WorkloadInputs{RLocal: 0.3}
	w.MemSide.LLCHit, w.MemSide.LSU = 0.8, 0.5
	w.SMSide.LLCHit, w.SMSide.LSU = 0.7, 0.95
	d := sac.DecideEAB(arch, w, 0.05)
	if !d.PickSM {
		t.Fatalf("SP-shaped inputs stayed memory-side: %+v", d)
	}
	if got := sac.LSU([]int64{10, 10}); got != 1 {
		t.Fatalf("LSU = %v", got)
	}
}

func TestHardwareBudgetSurface(t *testing.T) {
	if b := sac.HardwareBudget(false); b.TotalBytes != 620 {
		t.Fatalf("conventional budget %d, want 620", b.TotalBytes)
	}
	if b := sac.HardwareBudget(true); b.TotalBytes != 812 {
		t.Fatalf("sectored budget %d, want 812", b.TotalBytes)
	}
}

func TestWorkingSetsSurface(t *testing.T) {
	spec, _ := sac.Benchmark("RN")
	res, err := sac.WorkingSets(fastConfig(), spec, []int64{1000, 10000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) != 2 || res.FootprintMB <= 0 {
		t.Fatalf("result %+v", res)
	}
}

func TestNewSystemExposesMode(t *testing.T) {
	spec, _ := sac.Benchmark("BP")
	sys, err := sac.NewSystem(fastConfig().WithOrg(sac.MemorySide), spec)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Mode().String() != "memory-side" {
		t.Fatalf("mode %v", sys.Mode())
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRunnerSurface(t *testing.T) {
	r := &sac.Runner{Base: fastConfig(), Benchmarks: []string{"RN"}}
	f, err := r.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.KernelNames) == 0 {
		t.Fatal("no kernels")
	}
}

func TestHarmonicMeanSurface(t *testing.T) {
	if hm := sac.HarmonicMean([]float64{1, 1}); hm != 1 {
		t.Fatalf("HM = %v", hm)
	}
}

func TestFaultAPISurface(t *testing.T) {
	cfg := fastConfig()
	spec, err := sac.Benchmark("RN")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sac.ParseFaultPlan("xchip:0.cw@2000-30000*0.5; dram:1.0@1000-40000*0.5")
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := sac.RunWithFaults(cfg.WithOrg(sac.SAC), spec, plan)
	if err != nil {
		t.Fatal(err)
	}
	if faulted.FaultEvents == 0 {
		t.Fatal("fault plan injected no events")
	}
	healthy, err := sac.RunWithFaults(cfg.WithOrg(sac.SAC), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if healthy.FaultEvents != 0 {
		t.Fatalf("nil plan injected %d events", healthy.FaultEvents)
	}
	gen := sac.GenerateFaultPlan(cfg, 7, 5, 50_000)
	if len(gen.Events) != 5 {
		t.Fatalf("generated %d events, want 5", len(gen.Events))
	}
	if gen.Key() != sac.GenerateFaultPlan(cfg, 7, 5, 50_000).Key() {
		t.Fatal("generation not deterministic per seed")
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	cfg := fastConfig()
	cfg.Chips = 0
	spec, err := sac.Benchmark("RN")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sac.Run(cfg, spec); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := sac.NewSystem(cfg, spec); err == nil {
		t.Fatal("invalid config accepted by NewSystem")
	}
	if _, err := sac.RunWithFaults(cfg, spec, nil); err == nil {
		t.Fatal("invalid config accepted by RunWithFaults")
	}
}

// panicWorkload implements sac.Workload and explodes when streamed, modeling
// a buggy user workload source: the guard must convert the panic into an
// error instead of killing the caller.
type panicWorkload struct{}

func (panicWorkload) SourceName() string    { return "panic" }
func (panicWorkload) KernelCount() int      { return 1 }
func (panicWorkload) KernelName(int) string { return "k0" }
func (panicWorkload) Stream(m workload.Machine, ki, chip, sm, warp int) workload.AccessStream {
	panic("boom from workload")
}

func TestRunWorkloadContainsPanic(t *testing.T) {
	_, err := sac.RunWorkload(fastConfig(), panicWorkload{})
	if err == nil {
		t.Fatal("panicking workload returned nil error")
	}
	if !strings.Contains(err.Error(), "boom from workload") {
		t.Fatalf("panic context lost: %v", err)
	}
}
